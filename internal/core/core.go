// Package core assembles the full S-CDN of the paper's Fig. 1: the social
// network platform, social middleware, allocation-server cluster,
// researcher repositories with CDN clients, the third-party transfer
// engine over a wide-area network model, node churn, the trust model, and
// the Section V-E metrics — all driven by one discrete-event simulation.
package core

import (
	"fmt"
	"sort"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/availability"
	"scdn/internal/cdnclient"
	"scdn/internal/graph"
	"scdn/internal/metrics"
	"scdn/internal/middleware"
	"scdn/internal/netmodel"
	"scdn/internal/placement"
	"scdn/internal/provenance"
	"scdn/internal/replication"
	"scdn/internal/sim"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
	"scdn/internal/transfer"
	"scdn/internal/trust"
	"scdn/internal/workload"
)

// NodeID aliases the shared participant identifier.
type NodeID = allocation.NodeID

// User describes one participating researcher.
type User struct {
	ID   graph.NodeID
	Name string
	// SiteID places the user's repository in the network model; use -1 to
	// auto-assign (round-robin over generated sites).
	SiteID int
	// CapacityBytes / ReplicaReserveBytes size the contributed repository;
	// zero values take Config defaults.
	CapacityBytes       int64
	ReplicaReserveBytes int64
	// Institutional marks always-on nodes (lab servers); others follow a
	// diurnal churn trace.
	Institutional bool
}

// Edge is a social tie between two users.
type Edge struct {
	A, B     graph.NodeID
	Type     socialnet.RelationshipType
	Strength float64
}

// Config parameterizes the assembled system.
type Config struct {
	Seed int64
	// AllocationServers is the cluster size (paper: "one or more").
	AllocationServers int
	// MaxReplicas / DemandThreshold tune the allocation policy.
	MaxReplicas     int
	DemandThreshold uint64
	// Placement selects replica locations (defaults to Community Node
	// Degree, the paper's best performer). Strategy can override it with
	// a runtime-data-bound algorithm.
	Placement placement.Algorithm
	// Strategy optionally replaces Placement with an algorithm bound to
	// live system state: StrategyTrust ranks by accumulated pairwise
	// trust, StrategyAvailability by uptime-weighted degree.
	Strategy Strategy
	// MigrationUptimeFloor: during maintenance sweeps, non-origin
	// replicas on nodes whose availability trace falls below this uptime
	// are migrated to better hosts (0 disables migration).
	MigrationUptimeFloor float64
	// DefaultCapacityBytes / DefaultReplicaReserveBytes size repositories
	// that don't specify their own.
	DefaultCapacityBytes       int64
	DefaultReplicaReserveBytes int64
	// SiteBandwidthMinMbps/MaxMbps bound generated access links.
	SiteBandwidthMinMbps, SiteBandwidthMaxMbps float64
	// Churn enables diurnal availability (institutional nodes stay up).
	Churn bool
	// MaintenanceInterval is the allocation sweep period.
	MaintenanceInterval time.Duration
	// SampleInterval drives availability/redundancy sampling.
	SampleInterval time.Duration
	// AntiEntropyInterval is the update-propagation round period.
	AntiEntropyInterval time.Duration
	// UpdateDeltaFraction sizes update deltas relative to the dataset
	// (default 0.1).
	UpdateDeltaFraction float64
	// TransferFailureProb sets the per-attempt transfer failure rate.
	TransferFailureProb float64
	// TransferStreams is the GridFTP-style parallel-stream count per
	// transfer (GlobusTransfer behaviour; default 1).
	TransferStreams int
	// P2PFallback lets clients discover replicas through their social
	// neighbourhood when no allocation server is live (the paper's
	// decentralized design alternative).
	P2PFallback bool
	// GroupName is the collaboration group all datasets are scoped to.
	GroupName string
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                       seed,
		AllocationServers:          2,
		MaxReplicas:                5,
		DemandThreshold:            8,
		Placement:                  placement.CommunityNodeDegree{},
		DefaultCapacityBytes:       200e9,
		DefaultReplicaReserveBytes: 80e9,
		SiteBandwidthMinMbps:       50,
		SiteBandwidthMaxMbps:       1000,
		Churn:                      true,
		MaintenanceInterval:        6 * time.Hour,
		SampleInterval:             time.Hour,
		AntiEntropyInterval:        2 * time.Hour,
		UpdateDeltaFraction:        0.1,
		TransferFailureProb:        0.02,
		P2PFallback:                true,
		GroupName:                  "collaboration",
	}
}

// Strategy selects how replica hosts are ranked.
type Strategy int

// Placement strategies.
const (
	// StrategySocial uses Config.Placement (default).
	StrategySocial Strategy = iota
	// StrategyTrust ranks nodes by the sum of their neighbours' proven
	// trust scores from the live trust model.
	StrategyTrust
	// StrategyAvailability ranks by degree × uptime and forbids adjacent
	// replicas (the Section V-D availability-graph idea).
	StrategyAvailability
)

// SCDN is the assembled system.
type SCDN struct {
	Config      Config
	Engine      *sim.Engine
	Network     *netmodel.Network
	Platform    *socialnet.Platform
	Mw          *middleware.Middleware
	Cluster     *allocation.Cluster
	Transfer    *transfer.Engine
	Trust       *trust.Model
	Replication *replication.Tracker
	Provenance  *provenance.Log

	CDN    *metrics.CDNMetrics
	Social *metrics.SocialMetrics

	users   []User
	byID    map[graph.NodeID]*participant
	group   string
	dataset map[storage.DatasetID]int64  // registered sizes
	owner   map[storage.DatasetID]NodeID // publish-time origins

	// P2PLookups counts replica discoveries that bypassed the catalog.
	P2PLookups uint64
}

type participant struct {
	user   User
	repo   *storage.Repository
	client *cdnclient.Client
	trace  *availability.Trace
	token  socialnet.Token
}

// directory adapts the assembled state to allocation.Directory.
type directory struct{ s *SCDN }

func (d directory) SiteOf(node NodeID) (int, bool) {
	p, ok := d.s.byID[graph.NodeID(node)]
	if !ok {
		return 0, false
	}
	return p.user.SiteID, true
}

func (d directory) Online(node NodeID) bool {
	return d.s.OnlineAt(graph.NodeID(node), d.s.Engine.Now().Duration())
}

func (d directory) RTT(a, b int) (time.Duration, error) { return d.s.Network.RTT(a, b) }

// fetcher adapts the transfer engine to the client interface, recording
// exchange metrics and trust interactions.
type fetcher struct{ s *SCDN }

func (f fetcher) Fetch(src, dst NodeID, bytes int64, done func(bool, time.Duration, float64)) error {
	s := f.s
	srcSite, ok := directory{s}.SiteOf(src)
	if !ok {
		return fmt.Errorf("core: unknown source user %d", src)
	}
	dstSite, ok := directory{s}.SiteOf(dst)
	if !ok {
		return fmt.Errorf("core: unknown destination user %d", dst)
	}
	s.Social.Exchanges.Inc()
	start := s.Engine.Now()
	return s.Transfer.Submit(srcSite, dstSite, bytes, func(r transfer.Result) {
		elapsed := (s.Engine.Now() - start).Duration()
		if r.Status == transfer.Completed {
			s.Social.SuccessfulExchanges.Inc()
			s.Social.TransactionVolumeBytes.Add(uint64(bytes))
			s.CDN.TransferThroughput.Observe(r.ThroughputMbps)
			s.Trust.Record(graph.NodeID(src), graph.NodeID(dst),
				trust.Interaction{Kind: trust.TransferCompleted, At: elapsedAt(s)})
			done(true, elapsed, r.ThroughputMbps)
			return
		}
		s.Social.FailedExchanges.Inc()
		s.Trust.Record(graph.NodeID(src), graph.NodeID(dst),
			trust.Interaction{Kind: trust.TransferFailed, At: elapsedAt(s)})
		done(false, elapsed, 0)
	})
}

func elapsedAt(s *SCDN) time.Duration { return s.Engine.Now().Duration() }

// New assembles an S-CDN over the given community.
func New(cfg Config, users []User, edges []Edge) (*SCDN, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("core: no users")
	}
	if cfg.AllocationServers < 1 {
		cfg.AllocationServers = 1
	}
	if cfg.Placement == nil {
		cfg.Placement = placement.CommunityNodeDegree{}
	}
	if cfg.GroupName == "" {
		cfg.GroupName = "collaboration"
	}
	if cfg.MaintenanceInterval <= 0 {
		cfg.MaintenanceInterval = 6 * time.Hour
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Hour
	}

	s := &SCDN{
		Config:      cfg,
		Engine:      sim.New(cfg.Seed),
		Platform:    socialnet.New(cfg.Seed + 1),
		Trust:       trust.NewModel(0),
		Replication: replication.NewTracker(),
		Provenance:  provenance.NewLog(),
		CDN:         &metrics.CDNMetrics{},
		Social:      metrics.NewSocialMetrics(),
		users:       users,
		byID:        make(map[graph.NodeID]*participant, len(users)),
		group:       cfg.GroupName,
		dataset:     make(map[storage.DatasetID]int64),
		owner:       make(map[storage.DatasetID]NodeID),
	}

	// Network sites: one per distinct requested site, auto-assigning -1s.
	maxSite := -1
	for _, u := range users {
		if u.SiteID > maxSite {
			maxSite = u.SiteID
		}
	}
	autoCount := 0
	for i := range users {
		if users[i].SiteID < 0 {
			users[i].SiteID = maxSite + 1 + autoCount%16
			autoCount++
		}
	}
	needed := 0
	for _, u := range users {
		if u.SiteID+1 > needed {
			needed = u.SiteID + 1
		}
	}
	minBW, maxBW := cfg.SiteBandwidthMinMbps, cfg.SiteBandwidthMaxMbps
	if minBW <= 0 {
		minBW = 50
	}
	if maxBW < minBW {
		maxBW = minBW
	}
	net, _, err := netmodel.GenerateSites(needed, cfg.Seed+2, minBW, maxBW)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.Network = net

	s.Mw = middleware.New(s.Platform, func() time.Duration { return s.Engine.Now().Duration() })
	s.Transfer = transfer.NewEngine(net, s.Engine)
	if cfg.TransferFailureProb > 0 {
		s.Transfer.FailureProb = cfg.TransferFailureProb
	}
	if cfg.TransferStreams > 1 {
		s.Transfer.StreamsPerTransfer = cfg.TransferStreams
	}

	cluster, err := allocation.NewCluster(cfg.AllocationServers, directory{s})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.MaxReplicas > 0 && cfg.DemandThreshold > 0 {
		cluster.SetPolicy(cfg.MaxReplicas, cfg.DemandThreshold)
	}
	s.Cluster = cluster

	// Participants: platform registration, repository, churn trace, client.
	churnRNG := s.Engine.Rand("churn")
	for _, u := range users {
		capBytes := u.CapacityBytes
		if capBytes <= 0 {
			capBytes = cfg.DefaultCapacityBytes
		}
		reserve := u.ReplicaReserveBytes
		if reserve <= 0 {
			reserve = cfg.DefaultReplicaReserveBytes
		}
		if reserve > capBytes {
			reserve = capBytes / 2
		}
		if err := s.Platform.Register(u.ID, socialnet.Profile{Name: u.Name, SiteID: u.SiteID}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := s.Platform.JoinGroup(cfg.GroupName, u.ID); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		repo, err := storage.NewRepository(int64(u.ID), u.SiteID, capBytes, reserve)
		if err != nil {
			return nil, fmt.Errorf("core: user %d: %w", u.ID, err)
		}
		var tr *availability.Trace
		if !cfg.Churn || u.Institutional {
			tr = availability.AlwaysOn(48, 30*time.Minute)
		} else {
			site, _ := net.Site(u.SiteID)
			tz := 0
			if site != nil {
				tz = site.TimeZoneOffset
			}
			tr = availability.Generate(availability.DefaultDiurnal(tz), churnRNG)
		}
		p := &participant{user: u, repo: repo, trace: tr}
		s.byID[u.ID] = p
		s.Social.RecordContribution(int64(u.ID), u.SiteID, reserve)
	}

	// Social ties.
	for _, e := range edges {
		if err := s.Platform.Connect(e.A, e.B, e.Type, e.Strength); err != nil {
			return nil, fmt.Errorf("core: edge %d-%d: %w", e.A, e.B, err)
		}
	}

	// Clients log in through the middleware and get wired to the cluster
	// and transfer engine.
	mwTTL := 100 * 365 * 24 * time.Hour // sessions outlive simulations
	s.Mw.TokenTTL = mwTTL
	for _, u := range users {
		p := s.byID[u.ID]
		tok, err := s.Mw.Login(u.ID)
		if err != nil {
			return nil, fmt.Errorf("core: login %d: %w", u.ID, err)
		}
		p.token = tok
		client, err := cdnclient.New(NodeID(u.ID), tok, p.repo, s.Mw, fallbackResolver{s}, fetcher{s},
			func() time.Duration { return s.Engine.Now().Duration() })
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", u.ID, err)
		}
		p.client = client
	}

	// Periodic maintenance, sampling, and update propagation.
	s.Engine.Ticker(cfg.MaintenanceInterval, func() bool { s.maintain(); return true })
	s.Engine.Ticker(cfg.SampleInterval, func() bool { s.sample(); return true })
	aeInterval := cfg.AntiEntropyInterval
	if aeInterval <= 0 {
		aeInterval = 2 * time.Hour
	}
	s.Engine.Ticker(aeInterval, func() bool { s.antiEntropy(); return true })
	return s, nil
}

// OnlineAt reports whether a user's node is up at the given virtual time.
func (s *SCDN) OnlineAt(id graph.NodeID, at time.Duration) bool {
	p, ok := s.byID[id]
	if !ok {
		return false
	}
	return p.trace.At(at)
}

// Client returns a user's CDN client.
func (s *SCDN) Client(id graph.NodeID) (*cdnclient.Client, error) {
	p, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %d", id)
	}
	return p.client, nil
}

// Repository returns a user's repository.
func (s *SCDN) Repository(id graph.NodeID) (*storage.Repository, error) {
	p, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %d", id)
	}
	return p.repo, nil
}

// Users returns participant IDs sorted ascending.
func (s *SCDN) Users() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.byID))
	for id := range s.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PublishDataset introduces a dataset: the owner keeps the origin copy in
// their repository's user partition, the middleware scopes it to the
// collaboration group, and the allocation cluster catalogues it.
func (s *SCDN) PublishDataset(owner graph.NodeID, id storage.DatasetID, bytes int64) error {
	p, ok := s.byID[owner]
	if !ok {
		return fmt.Errorf("core: unknown owner %d", owner)
	}
	if err := s.Mw.RegisterDataset(id, s.group); err != nil {
		return err
	}
	if err := s.Cluster.RegisterDataset(id, NodeID(owner), bytes); err != nil {
		return err
	}
	if err := p.repo.StoreUser(id, bytes, s.Engine.Now().Duration()); err != nil {
		return fmt.Errorf("core: owner %d cannot hold own dataset: %w", owner, err)
	}
	s.dataset[id] = bytes
	s.owner[id] = NodeID(owner)
	s.Replication.AddReplica(id, NodeID(owner), s.Engine.Now().Duration())
	s.Provenance.RecordCreated(id, NodeID(owner), s.Engine.Now().Duration())
	return nil
}

// PublishDerived publishes a dataset produced from parent by a workflow
// stage, recording the derivation in the provenance log.
func (s *SCDN) PublishDerived(owner graph.NodeID, id storage.DatasetID, bytes int64,
	parent storage.DatasetID, stage string) error {
	if err := s.PublishDataset(owner, id, bytes); err != nil {
		return err
	}
	s.Provenance.RecordDerived(id, parent, NodeID(owner), stage, s.Engine.Now().Duration())
	return nil
}

// PlaceReplicas selects up to k replica holders for a dataset with the
// configured placement algorithm over the collaboration's social graph
// and asks their clients to host copies (fetching from the origin). It
// returns the nodes that accepted.
func (s *SCDN) PlaceReplicas(id storage.DatasetID, k int) ([]graph.NodeID, error) {
	bytes, err := s.Cluster.DatasetBytes(id)
	if err != nil {
		return nil, err
	}
	origin, err := s.Cluster.Origin(id)
	if err != nil {
		return nil, err
	}
	g, err := s.Mw.GroupGraph(id)
	if err != nil {
		return nil, err
	}
	// Current holders never receive a second copy of the same dataset.
	holders := make(map[NodeID]struct{})
	if reps, err := s.Cluster.Replicas(id); err == nil {
		for _, r := range reps {
			holders[r.Node] = struct{}{}
		}
	}
	// Ask for extra candidates to cover the origin, holders, and decliners.
	cands := s.placementAlgorithm().Place(g, k+3+len(holders), s.Engine.Rand("placement"))
	var accepted []graph.NodeID
	placedAt := s.Engine.Now().Duration()
	for _, cand := range cands {
		if len(accepted) == k {
			break
		}
		if NodeID(cand) == origin {
			continue
		}
		if _, holds := holders[NodeID(cand)]; holds {
			continue
		}
		p, ok := s.byID[cand]
		if !ok {
			continue
		}
		s.Social.StorageRequests.Inc()
		reqStart := s.Engine.Now()
		cand := cand
		// A client that cannot host (full reserve, duplicate) declines
		// synchronously; acceptance completes asynchronously after the
		// replica transfer.
		declined := false
		p.client.HostReplica(id, origin, bytes, func(ok, fetched bool) {
			if !ok {
				declined = true
				return
			}
			s.Social.StorageAccepts.Inc()
			s.Social.AllocationDelay.Observe((s.Engine.Now() - reqStart).Duration().Seconds())
			if fetched {
				if err := s.Cluster.AddReplica(id, NodeID(cand), placedAt); err == nil {
					s.Social.AllocatedBytes.Add(float64(bytes))
					s.Replication.AddReplica(id, NodeID(cand), s.Engine.Now().Duration())
					s.Provenance.RecordReplicated(id, NodeID(cand), origin, s.Engine.Now().Duration())
				}
			}
		})
		if declined {
			continue
		}
		accepted = append(accepted, cand)
	}
	return accepted, nil
}

// RequestAccess performs one user data access, updating the CDN metrics.
// done may be nil.
func (s *SCDN) RequestAccess(user graph.NodeID, id storage.DatasetID, done func(cdnclient.AccessResult)) error {
	p, ok := s.byID[user]
	if !ok {
		return fmt.Errorf("core: unknown user %d", user)
	}
	p.client.Access(id, func(r cdnclient.AccessResult) {
		switch r.Outcome {
		case cdnclient.LocalHit:
			s.CDN.RequestsServed.Inc()
			s.CDN.LocalHits.Inc()
			s.Provenance.RecordAccessed(id, NodeID(user), 0, s.Engine.Now().Duration())
		case cdnclient.ReplicaFetch:
			s.CDN.RequestsServed.Inc()
			s.CDN.ReplicaHits.Inc()
			s.Social.RecordConsumption(int64(user), s.dataset[id])
			s.Provenance.RecordAccessed(id, NodeID(user), r.Source, s.Engine.Now().Duration())
		case cdnclient.OriginFetch:
			s.CDN.RequestsServed.Inc()
			s.CDN.OriginFetches.Inc()
			s.Social.RecordConsumption(int64(user), s.dataset[id])
			s.Provenance.RecordAccessed(id, NodeID(user), r.Source, s.Engine.Now().Duration())
		case cdnclient.Unavailable:
			s.CDN.RequestsFailed.Inc()
			s.CDN.ReplicaUnavailable.Inc()
		default: // Denied, TransferFailed
			s.CDN.RequestsFailed.Inc()
		}
		s.CDN.ResponseTime.Observe(r.Elapsed.Seconds())
		if done != nil {
			done(r)
		}
	})
	return nil
}

// LoadRequests schedules a workload's requests on the simulation clock.
func (s *SCDN) LoadRequests(reqs []workload.Request) {
	for _, r := range reqs {
		r := r
		s.Engine.ScheduleAt(sim.Time(r.At), func() {
			// Offline users defer their accesses until they return; model
			// this simply as issuing when scheduled only if online.
			if !s.OnlineAt(r.User, s.Engine.Now().Duration()) {
				return
			}
			_ = s.RequestAccess(r.User, r.Data, nil)
		})
	}
}

// Run drives the simulation until the deadline.
func (s *SCDN) Run(duration time.Duration) {
	s.Engine.RunUntil(sim.Time(duration))
}

// placementAlgorithm resolves the effective placement algorithm,
// binding live system state for the dynamic strategies.
func (s *SCDN) placementAlgorithm() placement.Algorithm {
	switch s.Config.Strategy {
	case StrategyTrust:
		now := s.Engine.Now().Duration()
		return placement.TrustWeightedDegree{
			Weights: func(u, v graph.NodeID) float64 {
				// Proven trust plus a base weight so cold-start systems
				// still see the social topology.
				return 1 + s.Trust.Score(u, v, now)
			},
		}
	case StrategyAvailability:
		return placement.AvailabilityAwareDegree{
			Quality: func(u graph.NodeID) float64 {
				p, ok := s.byID[u]
				if !ok {
					return 0
				}
				return p.trace.Uptime()
			},
		}
	default:
		return s.Config.Placement
	}
}

// maintain performs the allocation sweep: re-replicates hot datasets and
// migrates replicas away from low-availability hosts.
func (s *SCDN) maintain() {
	hot, err := s.Cluster.MaintenanceSweep()
	if err != nil {
		return
	}
	for _, h := range hot {
		_, _ = s.PlaceReplicas(h.ID, 1)
	}
	// Placement attempted for every recommendation (success or not):
	// acknowledge the observed demand so the next sweep starts fresh.
	s.Cluster.AckSweep(hot)
	if s.Config.MigrationUptimeFloor > 0 {
		s.migrateWeakReplicas()
	}
}

// migrateWeakReplicas moves replicas off hosts whose uptime is below the
// configured floor: a stronger host receives a fresh copy, then the weak
// holder's copy is retired. Each move counts toward the stability metric.
func (s *SCDN) migrateWeakReplicas() {
	ids, err := s.Cluster.Datasets()
	if err != nil {
		return
	}
	for _, id := range ids {
		reps, err := s.Cluster.Replicas(id)
		if err != nil {
			continue
		}
		origin, err := s.Cluster.Origin(id)
		if err != nil {
			continue
		}
		for _, r := range reps {
			if r.Node == origin {
				continue
			}
			p, ok := s.byID[graph.NodeID(r.Node)]
			if !ok || p.trace.Uptime() >= s.Config.MigrationUptimeFloor {
				continue
			}
			// Place a replacement first; only retire the weak copy once a
			// new holder accepted, so redundancy never drops.
			placed, err := s.PlaceReplicas(id, 1)
			if err != nil || len(placed) == 0 {
				continue
			}
			weak := r.Node
			if err := s.Cluster.RemoveReplica(id, weak); err == nil {
				if repo, err := s.Repository(graph.NodeID(weak)); err == nil {
					_ = repo.DropReplica(id)
				}
				s.Replication.RemoveReplica(id, weak)
				s.Provenance.RecordRetired(id, weak, s.Engine.Now().Duration())
				s.CDN.Migrations.Inc()
			}
		}
	}
}

// sample records availability and redundancy snapshots.
func (s *SCDN) sample() {
	now := s.Engine.Now().Duration()
	online := 0
	for _, p := range s.byID {
		if p.trace.At(now) {
			online++
		}
	}
	if len(s.byID) > 0 {
		s.CDN.AvailabilitySamples.Observe(float64(online) / float64(len(s.byID)))
	}
	ids, err := s.Cluster.Datasets()
	if err != nil {
		return
	}
	for _, id := range ids {
		s.CDN.RedundancySamples.Observe(float64(s.Cluster.ReplicaCount(id)))
	}
	s.CDN.StalenessSamples.Observe(s.Replication.StalenessRatio())
}
