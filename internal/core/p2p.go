package core

import (
	"fmt"
	"sort"

	"scdn/internal/allocation"
	"scdn/internal/graph"
	"scdn/internal/storage"
)

// The paper chooses centralized allocation servers over "a completely
// decentralized Peer-to-Peer (P2P) architecture ... to enable more
// efficient discovery of replicas", but keeps P2P as the design
// alternative. fallbackResolver realizes that alternative as a safety
// net: when no allocation server is live, a client queries its social
// neighbourhood (one and two hops — the trust boundary it can reach
// without a catalog) for an online holder of the dataset.

// fallbackResolver decorates the allocation cluster with social-gossip
// discovery.
type fallbackResolver struct{ s *SCDN }

// Resolve tries the cluster first; on total catalog outage it falls back
// to neighbourhood search.
func (f fallbackResolver) Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	rep, ok, err := f.s.Cluster.Resolve(id, requester)
	if err == nil {
		return rep, ok, nil
	}
	if !f.s.Config.P2PFallback {
		return rep, ok, err
	}
	return f.s.p2pDiscover(id, requester)
}

// DatasetBytes serves from the cluster, falling back to the local size
// registry.
func (f fallbackResolver) DatasetBytes(id storage.DatasetID) (int64, error) {
	if b, err := f.s.Cluster.DatasetBytes(id); err == nil {
		return b, nil
	} else if !f.s.Config.P2PFallback {
		return 0, err
	}
	if b, ok := f.s.dataset[id]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("core: dataset %q unknown to this node", id)
}

// Origin serves from the cluster, falling back to the publish-time owner
// registry.
func (f fallbackResolver) Origin(id storage.DatasetID) (allocation.NodeID, error) {
	if o, err := f.s.Cluster.Origin(id); err == nil {
		return o, nil
	} else if !f.s.Config.P2PFallback {
		return 0, err
	}
	if o, ok := f.s.owner[id]; ok {
		return o, nil
	}
	return 0, fmt.Errorf("core: dataset %q unknown to this node", id)
}

// p2pDiscover searches the requester's 1- and 2-hop social neighbourhood
// for an online repository holding the dataset, nearest (fewest hops,
// then lowest ID) first. It counts a P2P lookup metric so operators can
// see the catalog was bypassed.
func (s *SCDN) p2pDiscover(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	s.P2PLookups++
	g := s.Platform.SocialGraph()
	now := s.Engine.Now().Duration()

	tryNodes := func(nodes []graph.NodeID) (allocation.Replica, bool) {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			p, ok := s.byID[n]
			if !ok || !p.trace.At(now) {
				continue
			}
			if p.repo.HasLocal(id) {
				return allocation.Replica{Node: NodeID(n), Site: p.user.SiteID}, true
			}
		}
		return allocation.Replica{}, false
	}

	oneHop := g.Neighbors(graph.NodeID(requester))
	if rep, ok := tryNodes(oneHop); ok {
		return rep, true, nil
	}
	// Two hops: neighbours of neighbours, excluding self and 1-hop.
	seen := map[graph.NodeID]struct{}{graph.NodeID(requester): {}}
	for _, n := range oneHop {
		seen[n] = struct{}{}
	}
	var twoHop []graph.NodeID
	for _, n := range oneHop {
		for _, m := range g.Neighbors(n) {
			if _, dup := seen[m]; !dup {
				seen[m] = struct{}{}
				twoHop = append(twoHop, m)
			}
		}
	}
	if rep, ok := tryNodes(twoHop); ok {
		return rep, true, nil
	}
	return allocation.Replica{}, false, nil
}
