package allocation

import (
	"testing"
	"testing/quick"

	"scdn/internal/storage"
)

func setupCluster(t *testing.T, n int) (*Cluster, *fakeDir) {
	t.Helper()
	d := newFakeDir()
	for node := NodeID(1); node <= 6; node++ {
		d.sites[node] = int(node) * 10
	}
	c, err := NewCluster(n, d)
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, newFakeDir()); err == nil {
		t.Fatal("empty cluster accepted")
	}
	c, _ := setupCluster(t, 3)
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestClusterReplicatesMutations(t *testing.T) {
	c, _ := setupCluster(t, 3)
	if err := c.RegisterDataset("d", 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica("d", 2, 0); err != nil {
		t.Fatal(err)
	}
	// Every member must hold the same catalog.
	for i, s := range c.servers {
		if !s.Registered("d") || s.ReplicaCount("d") != 2 {
			t.Fatalf("server %d catalog inconsistent", i)
		}
	}
	if err := c.RemoveReplica("d", 2); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.servers {
		if s.ReplicaCount("d") != 1 {
			t.Fatalf("server %d removal not replicated", i)
		}
	}
}

func TestClusterReadsRoundRobin(t *testing.T) {
	c, _ := setupCluster(t, 3)
	c.RegisterDataset("d", 1, 100)
	for i := 0; i < 9; i++ {
		if _, _, err := c.Resolve("d", 2); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range c.servers {
		if s.Lookups != 3 {
			t.Fatalf("server %d lookups = %d, want 3 (round robin)", i, s.Lookups)
		}
	}
}

func TestClusterDemandReplication(t *testing.T) {
	c, _ := setupCluster(t, 3)
	c.SetPolicy(5, 4)
	c.RegisterDataset("d", 1, 100)
	for i := 0; i < 6; i++ {
		c.Resolve("d", 2)
	}
	hot, err := c.MaintenanceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 1 || hot[0].ID != "d" || hot[0].Accesses != 6 {
		t.Fatalf("sweep = %+v (demand not replicated across members)", hot)
	}
	// AckSweep reaches every live member: after the ack, each server's
	// own sweep is empty.
	c.AckSweep(hot)
	for i, s := range c.servers {
		if again := s.MaintenanceSweep(); len(again) != 0 {
			t.Fatalf("server %d post-ack sweep = %+v, want empty", i, again)
		}
	}
}

func TestClusterSurvivesOutage(t *testing.T) {
	c, _ := setupCluster(t, 3)
	c.RegisterDataset("d", 1, 100)
	if err := c.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica("d", 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Resolve("d", 3); err != nil || !ok {
		t.Fatalf("resolve during outage failed: %v %v", ok, err)
	}
	// Server 0 missed the AddReplica; on rejoin it must resync.
	if err := c.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if c.servers[0].ReplicaCount("d") != 2 {
		t.Fatal("rejoined server did not resync catalog")
	}
	if err := c.SetDown(9, true); err == nil {
		t.Fatal("unknown server id accepted")
	}
}

func TestClusterAllDown(t *testing.T) {
	c, _ := setupCluster(t, 2)
	c.RegisterDataset("d", 1, 100)
	c.SetDown(0, true)
	c.SetDown(1, true)
	if err := c.RegisterDataset("e", 1, 100); err == nil {
		t.Fatal("mutation with no live servers accepted")
	}
	if _, _, err := c.Resolve("d", 2); err == nil {
		t.Fatal("resolve with no live servers accepted")
	}
	if _, err := c.MaintenanceSweep(); err == nil {
		t.Fatal("sweep with no live servers accepted")
	}
	if _, err := c.Datasets(); err == nil {
		t.Fatal("datasets with no live servers accepted")
	}
	if n := c.ReplicaCount("d"); n != 0 {
		t.Fatalf("replica count with no live servers = %d", n)
	}
}

func TestClusterReadHelpers(t *testing.T) {
	c, _ := setupCluster(t, 2)
	c.RegisterDataset("d", 1, 123)
	if b, err := c.DatasetBytes("d"); err != nil || b != 123 {
		t.Fatalf("bytes = %d, %v", b, err)
	}
	if o, err := c.Origin("d"); err != nil || o != 1 {
		t.Fatalf("origin = %d, %v", o, err)
	}
	reps, err := c.Replicas("d")
	if err != nil || len(reps) != 1 {
		t.Fatalf("replicas = %+v, %v", reps, err)
	}
	ids, err := c.Datasets()
	if err != nil || len(ids) != 1 || ids[0] != "d" {
		t.Fatalf("datasets = %v, %v", ids, err)
	}
	lookups, resolved, unresolved := c.Stats()
	if lookups != 0 || resolved != 0 || unresolved != 0 {
		t.Fatal("fresh cluster stats nonzero")
	}
}

// TestPropertyClusterConsistencyUnderOutages drives random mutations,
// reads, and outage/rejoin cycles, checking that all live members agree
// on the catalog after every step.
func TestPropertyClusterConsistencyUnderOutages(t *testing.T) {
	type op struct {
		Kind uint8
		A    uint8
		B    uint8
	}
	f := func(ops []op) bool {
		d := newFakeDir()
		for n := NodeID(1); n <= 9; n++ {
			d.sites[n] = int(n)
		}
		c, err := NewCluster(3, d)
		if err != nil {
			return false
		}
		down := map[int]bool{}
		datasets := []storage.DatasetID{"d0", "d1", "d2", "d3"}
		for _, o := range ops {
			id := datasets[int(o.A)%len(datasets)]
			node := NodeID(int(o.B)%9 + 1)
			switch o.Kind % 6 {
			case 0:
				c.RegisterDataset(id, node, 100) //nolint:errcheck
			case 1:
				c.AddReplica(id, node, 0) //nolint:errcheck
			case 2:
				c.RemoveReplica(id, node) //nolint:errcheck
			case 3:
				c.Resolve(id, node) //nolint:errcheck
			case 4:
				srv := int(o.B) % 3
				// Never take the last live server down, so mutations
				// keep applying.
				liveCount := 0
				for i := 0; i < 3; i++ {
					if !down[i] {
						liveCount++
					}
				}
				if !down[srv] && liveCount > 1 {
					c.SetDown(srv, true)
					down[srv] = true
				}
			case 5:
				srv := int(o.B) % 3
				if down[srv] {
					c.SetDown(srv, false)
					down[srv] = false
				}
			}
			// Invariant: all live members hold identical catalogs.
			var ref *Server
			for i, s := range c.servers {
				if down[i] {
					continue
				}
				if ref == nil {
					ref = s
					continue
				}
				refIDs := ref.Datasets()
				sIDs := s.Datasets()
				if len(refIDs) != len(sIDs) {
					t.Logf("catalog size divergence: %v vs %v", refIDs, sIDs)
					return false
				}
				for _, dID := range refIDs {
					if ref.ReplicaCount(dID) != s.ReplicaCount(dID) {
						t.Logf("replica divergence on %q", dID)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
