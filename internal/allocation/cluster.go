package allocation

import (
	"fmt"
	"sync/atomic"
	"time"

	"scdn/internal/storage"
)

// Cluster keeps several allocation servers' catalogs consistent: every
// mutation is applied to all live members, and reads round-robin across
// live members so lookup load is shared. Trusted third parties (national
// labs, universities) host these servers in the paper's design; the
// cluster survives individual server outages as long as one member is up.
//
// The round-robin cursor is atomic so that callers who guard mutations
// with an exclusive lock (the serving plane's sharded catalog) can run
// pure reads — Replicas, DatasetBytes, Origin, Datasets, ReplicaCount —
// under a shared lock without racing on cursor advancement. Everything
// else remains single-writer.
type Cluster struct {
	servers []*Server
	down    map[int]bool
	cursor  atomic.Uint64 // round-robin read cursor
}

// NewCluster builds n servers over the directory. n must be >= 1.
func NewCluster(n int, dir Directory) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("allocation: cluster needs at least one server, got %d", n)
	}
	c := &Cluster{down: make(map[int]bool)}
	for i := 0; i < n; i++ {
		c.servers = append(c.servers, NewServer(i, dir))
	}
	return c, nil
}

// Size returns the cluster's membership count.
func (c *Cluster) Size() int { return len(c.servers) }

// SetDown marks a server offline (true) or online (false); mutations and
// reads skip offline members. Offline members are re-synchronized from a
// live member when they return.
func (c *Cluster) SetDown(id int, down bool) error {
	if id < 0 || id >= len(c.servers) {
		return fmt.Errorf("allocation: no server %d", id)
	}
	wasDown := c.down[id]
	c.down[id] = down
	if wasDown && !down {
		// Rejoin: copy catalog state from the first live member.
		src := c.firstLive(id)
		if src != nil {
			c.servers[id].catalog = cloneCatalog(src.catalog)
		}
	}
	return nil
}

func (c *Cluster) firstLive(excluding int) *Server {
	for i, s := range c.servers {
		if i != excluding && !c.down[i] {
			return s
		}
	}
	return nil
}

func cloneCatalog(in map[storage.DatasetID]*entry) map[storage.DatasetID]*entry {
	out := make(map[storage.DatasetID]*entry, len(in))
	for id, e := range in {
		ce := &entry{origin: e.origin, bytes: e.bytes, accesses: e.accesses,
			replicas: make(map[NodeID]*Replica, len(e.replicas))}
		for n, r := range e.replicas {
			cr := *r
			ce.replicas[n] = &cr
		}
		out[id] = ce
	}
	return out
}

// live returns a live server for reads, advancing the round-robin cursor.
func (c *Cluster) live() (*Server, error) {
	start := int((c.cursor.Add(1) - 1) % uint64(len(c.servers)))
	for i := 0; i < len(c.servers); i++ {
		idx := (start + i) % len(c.servers)
		if !c.down[idx] {
			return c.servers[idx], nil
		}
	}
	return nil, fmt.Errorf("allocation: no live allocation server")
}

// applyAll runs a mutation on every live server, returning the first
// error (mutations are deterministic, so either all live members succeed
// or all fail identically).
func (c *Cluster) applyAll(fn func(*Server) error) error {
	var firstErr error
	applied := false
	for i, s := range c.servers {
		if c.down[i] {
			continue
		}
		if err := fn(s); err != nil && firstErr == nil {
			firstErr = err
		}
		applied = true
	}
	if !applied {
		return fmt.Errorf("allocation: no live allocation server")
	}
	return firstErr
}

// RegisterDataset replicates the registration across the cluster.
func (c *Cluster) RegisterDataset(id storage.DatasetID, origin NodeID, bytes int64) error {
	return c.applyAll(func(s *Server) error { return s.RegisterDataset(id, origin, bytes) })
}

// AddReplica replicates a replica record across the cluster.
func (c *Cluster) AddReplica(id storage.DatasetID, node NodeID, at time.Duration) error {
	return c.applyAll(func(s *Server) error { return s.AddReplica(id, node, at) })
}

// RemoveReplica replicates a replica removal across the cluster.
func (c *Cluster) RemoveReplica(id storage.DatasetID, node NodeID) error {
	return c.applyAll(func(s *Server) error { return s.RemoveReplica(id, node) })
}

// Resolve answers from one live server (round-robin) and replicates the
// demand count to the other live members so maintenance sweeps agree.
func (c *Cluster) Resolve(id storage.DatasetID, requester NodeID) (Replica, bool, error) {
	s, err := c.live()
	if err != nil {
		return Replica{}, false, err
	}
	r, ok, err := s.Resolve(id, requester)
	if err == nil {
		for i, other := range c.servers {
			if other != s && !c.down[i] {
				other.noteAccess(id)
			}
		}
	}
	return r, ok, err
}

// Replicas reads the replica set from a live server.
func (c *Cluster) Replicas(id storage.DatasetID) ([]Replica, error) {
	s, err := c.live()
	if err != nil {
		return nil, err
	}
	return s.Replicas(id), nil
}

// DatasetBytes reads a dataset size from a live server.
func (c *Cluster) DatasetBytes(id storage.DatasetID) (int64, error) {
	s, err := c.live()
	if err != nil {
		return 0, err
	}
	return s.DatasetBytes(id)
}

// Origin reads a dataset origin from a live server.
func (c *Cluster) Origin(id storage.DatasetID) (NodeID, error) {
	s, err := c.live()
	if err != nil {
		return 0, err
	}
	return s.Origin(id)
}

// ReplicaCount reads from a live server (0 when none live).
func (c *Cluster) ReplicaCount(id storage.DatasetID) int {
	s, err := c.live()
	if err != nil {
		return 0
	}
	return s.ReplicaCount(id)
}

// Datasets lists dataset IDs from a live server.
func (c *Cluster) Datasets() ([]storage.DatasetID, error) {
	s, err := c.live()
	if err != nil {
		return nil, err
	}
	return s.Datasets(), nil
}

// MaintenanceSweep returns one live member's recommendations (they are
// identical across a consistent cluster). The sweep is read-only:
// demand counters are only consumed by AckSweep, so a caller that dies
// between sweeping and repairing loses nothing.
func (c *Cluster) MaintenanceSweep() ([]HotDataset, error) {
	for i, s := range c.servers {
		if c.down[i] {
			continue
		}
		return s.MaintenanceSweep(), nil
	}
	return nil, fmt.Errorf("allocation: no live allocation server")
}

// AckSweep acknowledges handled sweep recommendations on every live
// member, keeping their demand counters aligned.
func (c *Cluster) AckSweep(hot []HotDataset) {
	for i, s := range c.servers {
		if c.down[i] {
			continue
		}
		s.AckSweep(hot)
	}
}

// SetPolicy applies replica-budget and demand-threshold settings to every
// member (live or not — policy is configuration, not state).
func (c *Cluster) SetPolicy(maxReplicas int, demandThreshold uint64) {
	for _, s := range c.servers {
		s.MaxReplicas = maxReplicas
		s.DemandThreshold = demandThreshold
	}
}

// Stats aggregates lookup statistics across all members.
func (c *Cluster) Stats() (lookups, resolved, unresolved uint64) {
	for _, s := range c.servers {
		lookups += s.Lookups
		resolved += s.Resolved
		unresolved += s.Unresolved
	}
	return
}
