package allocation

import (
	"testing"
	"time"
)

// fakeDir is a test Directory: sites keyed by node, liveness toggleable,
// RTT proportional to |siteA - siteB|.
type fakeDir struct {
	sites   map[NodeID]int
	offline map[NodeID]bool
}

func newFakeDir() *fakeDir {
	return &fakeDir{sites: make(map[NodeID]int), offline: make(map[NodeID]bool)}
}

func (d *fakeDir) SiteOf(n NodeID) (int, bool) {
	s, ok := d.sites[n]
	return s, ok
}
func (d *fakeDir) Online(n NodeID) bool { return !d.offline[n] }
func (d *fakeDir) RTT(a, b int) (time.Duration, error) {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return time.Duration(diff) * time.Millisecond, nil
}

func setupServer(t *testing.T) (*Server, *fakeDir) {
	t.Helper()
	d := newFakeDir()
	for n := NodeID(1); n <= 6; n++ {
		d.sites[n] = int(n) * 10
	}
	return NewServer(0, d), d
}

func TestRegisterDataset(t *testing.T) {
	s, _ := setupServer(t)
	if err := s.RegisterDataset("d", 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDataset("d", 1, 100); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.RegisterDataset("e", 1, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := s.RegisterDataset("f", 99, 10); err == nil {
		t.Fatal("siteless origin accepted")
	}
	if !s.Registered("d") || s.Registered("zzz") {
		t.Fatal("Registered wrong")
	}
	if b, _ := s.DatasetBytes("d"); b != 100 {
		t.Fatalf("bytes = %d", b)
	}
	if o, _ := s.Origin("d"); o != 1 {
		t.Fatalf("origin = %d", o)
	}
	if _, err := s.DatasetBytes("zzz"); err == nil {
		t.Fatal("unknown dataset bytes resolved")
	}
	if _, err := s.Origin("zzz"); err == nil {
		t.Fatal("unknown dataset origin resolved")
	}
	// Origin holds the first copy.
	if n := s.ReplicaCount("d"); n != 1 {
		t.Fatalf("replica count = %d, want 1 (origin)", n)
	}
}

func TestAddRemoveReplica(t *testing.T) {
	s, _ := setupServer(t)
	s.RegisterDataset("d", 1, 100)
	if err := s.AddReplica("d", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReplica("d", 2, 0); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if err := s.AddReplica("zzz", 2, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := s.AddReplica("d", 99, 0); err == nil {
		t.Fatal("siteless node accepted")
	}
	reps := s.Replicas("d")
	if len(reps) != 2 || reps[0].Node != 1 || reps[1].Node != 2 {
		t.Fatalf("replicas = %+v", reps)
	}
	if err := s.RemoveReplica("d", 1); err == nil {
		t.Fatal("origin removal accepted")
	}
	if err := s.RemoveReplica("d", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveReplica("d", 2); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := s.RemoveReplica("zzz", 2); err == nil {
		t.Fatal("unknown dataset removal accepted")
	}
}

func TestResolvePicksNearestOnline(t *testing.T) {
	s, d := setupServer(t)
	s.RegisterDataset("d", 1, 100) // origin at site 10
	s.AddReplica("d", 4, 0)        // site 40
	s.AddReplica("d", 6, 0)        // site 60

	// Requester 5 is at site 50: nearest holder is node 4 (site 40) or 6
	// (site 60) both 10ms; tie broken by node order → 4.
	r, ok, err := s.Resolve("d", 5)
	if err != nil || !ok {
		t.Fatalf("resolve: %v %v", ok, err)
	}
	if r.Node != 4 {
		t.Fatalf("resolved node = %d, want 4", r.Node)
	}
	// Take node 4 offline: now node 6 wins.
	d.offline[4] = true
	r, ok, _ = s.Resolve("d", 5)
	if !ok || r.Node != 6 {
		t.Fatalf("resolved = %+v (%v), want node 6", r, ok)
	}
	// All offline → unresolved.
	d.offline[1], d.offline[6] = true, true
	_, ok, err = s.Resolve("d", 5)
	if err != nil || ok {
		t.Fatal("offline holders should leave request unresolved")
	}
	if s.Lookups != 3 || s.Resolved != 2 || s.Unresolved != 1 {
		t.Fatalf("stats = %d/%d/%d", s.Lookups, s.Resolved, s.Unresolved)
	}
}

func TestResolveErrors(t *testing.T) {
	s, _ := setupServer(t)
	if _, _, err := s.Resolve("zzz", 1); err == nil {
		t.Fatal("unknown dataset resolved")
	}
	s.RegisterDataset("d", 1, 100)
	if _, _, err := s.Resolve("d", 99); err == nil {
		t.Fatal("siteless requester resolved")
	}
}

func TestMaintenanceSweep(t *testing.T) {
	s, _ := setupServer(t)
	s.DemandThreshold = 3
	s.MaxReplicas = 2
	s.RegisterDataset("hot", 1, 100)
	s.RegisterDataset("cold", 2, 100)
	s.RegisterDataset("full", 3, 100)
	s.AddReplica("full", 4, 0) // at MaxReplicas already
	for i := 0; i < 5; i++ {
		s.Resolve("hot", 5)
		s.Resolve("full", 5)
	}
	s.Resolve("cold", 5)
	hot := s.MaintenanceSweep()
	if len(hot) != 1 || hot[0].ID != "hot" || hot[0].Accesses != 5 {
		t.Fatalf("sweep = %+v", hot)
	}
	// The sweep is read-only: until the caller acknowledges the
	// recommendations, a second sweep repeats them (a crashed sweeper
	// drops no repair work).
	if again := s.MaintenanceSweep(); len(again) != 1 || again[0].ID != "hot" {
		t.Fatalf("unacked second sweep = %+v, want the same recommendation", again)
	}
	s.AckSweep(hot)
	if acked := s.MaintenanceSweep(); len(acked) != 0 {
		t.Fatalf("post-ack sweep = %+v, want empty", acked)
	}
}

// TestMaintenanceSweepAckKeepsNewDemand checks the two-phase contract:
// accesses that arrive between the sweep and its acknowledgment are not
// lost — the ack subtracts only the demand the sweep observed.
func TestMaintenanceSweepAckKeepsNewDemand(t *testing.T) {
	s, _ := setupServer(t)
	s.DemandThreshold = 3
	s.RegisterDataset("d", 1, 100)
	for i := 0; i < 4; i++ {
		s.Resolve("d", 5)
	}
	hot := s.MaintenanceSweep()
	if len(hot) != 1 || hot[0].Accesses != 4 {
		t.Fatalf("sweep = %+v", hot)
	}
	// Demand keeps arriving while the sweeper is placing the replica.
	for i := 0; i < 3; i++ {
		s.Resolve("d", 5)
	}
	s.AckSweep(hot)
	// The three post-sweep accesses survived the ack and cross the
	// threshold on their own.
	if again := s.MaintenanceSweep(); len(again) != 1 || again[0].Accesses != 3 {
		t.Fatalf("post-ack sweep = %+v, want 3 surviving accesses", again)
	}
	// Acking an entry recorded with more accesses than remain (or an
	// unknown dataset) clamps at zero instead of wrapping.
	s.AckSweep([]HotDataset{{ID: "d", Accesses: 99}, {ID: "ghost", Accesses: 1}})
	if final := s.MaintenanceSweep(); len(final) != 0 {
		t.Fatalf("over-acked sweep = %+v, want empty", final)
	}
}

func TestDatasetsSorted(t *testing.T) {
	s, _ := setupServer(t)
	s.RegisterDataset("zz", 1, 1)
	s.RegisterDataset("aa", 1, 1)
	ids := s.Datasets()
	if len(ids) != 2 || ids[0] != "aa" {
		t.Fatalf("datasets = %v", ids)
	}
}
