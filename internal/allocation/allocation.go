// Package allocation implements the paper's allocation servers
// (Section V-B): catalogs that map datasets to replicas, resolve client
// requests to the best available replica, track demand, and decide when
// to add, migrate, or retire replicas. A Cluster keeps several servers'
// catalogs consistent, as in the paper's "one or more allocation servers
// act as catalogs for global datasets".
package allocation

import (
	"fmt"
	"sort"
	"time"

	"scdn/internal/storage"
)

// NodeID identifies a participating user/storage node.
type NodeID = int64

// Directory supplies node facts the allocation server needs but does not
// own: home sites and liveness. The core composes this from the social
// middleware and the availability model.
type Directory interface {
	// SiteOf returns the node's network-model site.
	SiteOf(node NodeID) (int, bool)
	// Online reports current liveness.
	Online(node NodeID) bool
	// RTT estimates round-trip time between two sites.
	RTT(siteA, siteB int) (time.Duration, error)
}

// Replica is one placed copy of a dataset.
type Replica struct {
	Node NodeID
	Site int
	// PlacedAt is when the replica went live (caller's clock).
	PlacedAt time.Duration
}

// entry is a catalog record.
type entry struct {
	origin   NodeID
	bytes    int64
	replicas map[NodeID]*Replica
	accesses uint64 // demand counter since last maintenance sweep
}

// Server is one allocation server. Not safe for concurrent use.
type Server struct {
	ID      int
	dir     Directory
	catalog map[storage.DatasetID]*entry
	// MaxReplicas bounds per-dataset replication.
	MaxReplicas int
	// DemandThreshold is the per-sweep access count that triggers
	// re-replication.
	DemandThreshold uint64
	// Lookups / Resolved / Unresolved are server statistics.
	Lookups    uint64
	Resolved   uint64
	Unresolved uint64
}

// NewServer creates a server backed by dir.
func NewServer(id int, dir Directory) *Server {
	return &Server{
		ID:              id,
		dir:             dir,
		catalog:         make(map[storage.DatasetID]*entry),
		MaxReplicas:     5,
		DemandThreshold: 10,
	}
}

// RegisterDataset records a dataset with its origin node and size. The
// origin always holds a copy (the owner's own repository).
func (s *Server) RegisterDataset(id storage.DatasetID, origin NodeID, bytes int64) error {
	if bytes <= 0 {
		return fmt.Errorf("allocation: non-positive dataset size %d", bytes)
	}
	if _, dup := s.catalog[id]; dup {
		return fmt.Errorf("allocation: dataset %q already registered", id)
	}
	site, ok := s.dir.SiteOf(origin)
	if !ok {
		return fmt.Errorf("allocation: origin node %d has no site", origin)
	}
	s.catalog[id] = &entry{
		origin: origin,
		bytes:  bytes,
		replicas: map[NodeID]*Replica{
			origin: {Node: origin, Site: site},
		},
	}
	return nil
}

// Registered reports whether the dataset is catalogued.
func (s *Server) Registered(id storage.DatasetID) bool {
	_, ok := s.catalog[id]
	return ok
}

// DatasetBytes returns a dataset's size.
func (s *Server) DatasetBytes(id storage.DatasetID) (int64, error) {
	e, ok := s.catalog[id]
	if !ok {
		return 0, fmt.Errorf("allocation: unknown dataset %q", id)
	}
	return e.bytes, nil
}

// Origin returns the dataset's origin node.
func (s *Server) Origin(id storage.DatasetID) (NodeID, error) {
	e, ok := s.catalog[id]
	if !ok {
		return 0, fmt.Errorf("allocation: unknown dataset %q", id)
	}
	return e.origin, nil
}

// AddReplica records a new replica for the dataset.
func (s *Server) AddReplica(id storage.DatasetID, node NodeID, at time.Duration) error {
	e, ok := s.catalog[id]
	if !ok {
		return fmt.Errorf("allocation: unknown dataset %q", id)
	}
	if _, dup := e.replicas[node]; dup {
		return fmt.Errorf("allocation: node %d already replicates %q", node, id)
	}
	site, ok := s.dir.SiteOf(node)
	if !ok {
		return fmt.Errorf("allocation: node %d has no site", node)
	}
	e.replicas[node] = &Replica{Node: node, Site: site, PlacedAt: at}
	return nil
}

// RemoveReplica deletes a replica record. Removing the origin's copy is
// rejected: the owner always keeps their data.
func (s *Server) RemoveReplica(id storage.DatasetID, node NodeID) error {
	e, ok := s.catalog[id]
	if !ok {
		return fmt.Errorf("allocation: unknown dataset %q", id)
	}
	if node == e.origin {
		return fmt.Errorf("allocation: refusing to remove origin copy of %q", id)
	}
	if _, ok := e.replicas[node]; !ok {
		return fmt.Errorf("allocation: node %d does not replicate %q", node, id)
	}
	delete(e.replicas, node)
	return nil
}

// Replicas returns the dataset's replica holders sorted by node ID.
func (s *Server) Replicas(id storage.DatasetID) []Replica {
	e, ok := s.catalog[id]
	if !ok {
		return nil
	}
	out := make([]Replica, 0, len(e.replicas))
	for _, r := range e.replicas {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Resolve picks the best replica for a requester: among online holders,
// the one with the lowest RTT from the requester's site (ties by node
// ID). It records demand. ok is false when no holder is online.
func (s *Server) Resolve(id storage.DatasetID, requester NodeID) (Replica, bool, error) {
	e, okE := s.catalog[id]
	if !okE {
		return Replica{}, false, fmt.Errorf("allocation: unknown dataset %q", id)
	}
	s.Lookups++
	e.accesses++
	reqSite, okS := s.dir.SiteOf(requester)
	if !okS {
		return Replica{}, false, fmt.Errorf("allocation: requester %d has no site", requester)
	}
	best := Replica{}
	bestRTT := time.Duration(-1)
	found := false
	// Deterministic iteration for reproducible simulations.
	nodes := make([]NodeID, 0, len(e.replicas))
	for n := range e.replicas {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		r := e.replicas[n]
		if !s.dir.Online(n) {
			continue
		}
		rtt, err := s.dir.RTT(reqSite, r.Site)
		if err != nil {
			continue
		}
		if !found || rtt < bestRTT {
			best, bestRTT, found = *r, rtt, true
		}
	}
	if found {
		s.Resolved++
	} else {
		s.Unresolved++
	}
	return best, found, nil
}

// noteAccess records demand without resolving — used by Cluster to
// replicate demand counters to members that did not answer the lookup.
func (s *Server) noteAccess(id storage.DatasetID) {
	if e, ok := s.catalog[id]; ok {
		e.accesses++
	}
}

// HotDataset is a maintenance recommendation: a dataset whose demand
// since the last sweep exceeded the threshold and which still has replica
// budget.
type HotDataset struct {
	ID       storage.DatasetID
	Accesses uint64
	Replicas int
}

// MaintenanceSweep returns datasets needing another replica. It is
// read-only: demand counters survive until the caller acknowledges them
// with AckSweep, so a sweeper that crashes between observing the
// recommendations and acting on them drops no repair work — the next
// sweep sees the same (or higher) demand. The caller performs the
// actual placement and transfer, calls AddReplica, then AckSweep.
func (s *Server) MaintenanceSweep() []HotDataset {
	var hot []HotDataset
	ids := make([]storage.DatasetID, 0, len(s.catalog))
	for id := range s.catalog {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := s.catalog[id]
		if e.accesses >= s.DemandThreshold && len(e.replicas) < s.MaxReplicas {
			hot = append(hot, HotDataset{ID: id, Accesses: e.accesses, Replicas: len(e.replicas)})
		}
	}
	return hot
}

// AckSweep acknowledges handled sweep recommendations: each entry's
// observed demand is subtracted from the dataset's counter, so accesses
// that arrived between the sweep and the acknowledgment are not lost.
// Unknown datasets are skipped.
func (s *Server) AckSweep(hot []HotDataset) {
	for _, h := range hot {
		e, ok := s.catalog[h.ID]
		if !ok {
			continue
		}
		if e.accesses >= h.Accesses {
			e.accesses -= h.Accesses
		} else {
			e.accesses = 0
		}
	}
}

// Datasets returns all catalogued dataset IDs sorted ascending.
func (s *Server) Datasets() []storage.DatasetID {
	ids := make([]storage.DatasetID, 0, len(s.catalog))
	for id := range s.catalog {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReplicaCount returns the dataset's current replica count (0 if
// unknown).
func (s *Server) ReplicaCount(id storage.DatasetID) int {
	e, ok := s.catalog[id]
	if !ok {
		return 0
	}
	return len(e.replicas)
}
