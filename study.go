package scdn

import (
	"fmt"
	"io"
	"time"

	"scdn/internal/casestudy"
	"scdn/internal/coauthor"
	"scdn/internal/core"
)

// StudyConfig parameterizes the paper's Section VI case study.
type StudyConfig struct {
	// Seed drives corpus generation and placement randomness (default 42,
	// the repository's canonical experiment seed).
	Seed int64
	// Runs averages each measurement over this many placements (paper:
	// 100).
	Runs int
	// MaxReplicas is the largest replica count evaluated (paper: 10).
	MaxReplicas int
	// HitRadius is the hop distance counting as a hit (paper: 1).
	HitRadius int
	// Extended additionally evaluates the non-paper algorithms.
	Extended bool
}

// Study is the materialized case study: trust subgraphs and test events.
type Study struct{ inner *casestudy.Study }

// TableIRow is one row of the paper's Table I.
type TableIRow = coauthor.Stats

// Fig2Stats summarizes a subgraph's topology (the paper's Fig. 2).
type Fig2Stats = casestudy.Fig2Stats

// Curve is one placement algorithm's hit-rate series (a Fig. 3 line).
type Curve = casestudy.Curve

// NewStudy generates the calibrated synthetic coauthorship corpus and
// derives the three trust subgraphs.
func NewStudy(cfg StudyConfig) (*Study, error) {
	inner := casestudy.DefaultConfig()
	if cfg.Seed != 0 {
		inner.Seed = cfg.Seed
	}
	if cfg.Runs > 0 {
		inner.Runs = cfg.Runs
	}
	if cfg.MaxReplicas > 0 {
		inner.MaxReplicas = cfg.MaxReplicas
	}
	if cfg.HitRadius > 0 {
		inner.HitRadius = cfg.HitRadius
	}
	inner.Extended = cfg.Extended
	s, err := casestudy.New(inner)
	if err != nil {
		return nil, err
	}
	return &Study{inner: s}, nil
}

// TableI returns the three subgraph rows (baseline, double-coauthorship,
// number-of-authors).
func (s *Study) TableI() []TableIRow { return s.inner.TableI() }

// WriteTableI prints Table I.
func (s *Study) WriteTableI(w io.Writer) error { return s.inner.WriteTableI(w) }

// Fig2 returns topology statistics for the three subgraphs.
func (s *Study) Fig2() []Fig2Stats { return s.inner.Fig2() }

// Fig3 evaluates every placement algorithm on the named subgraph
// ("baseline", "double", or "fewauthors") across replica counts.
func (s *Study) Fig3(subgraph string) ([]Curve, error) {
	sub, err := s.inner.SubgraphByName(subgraph)
	if err != nil {
		return nil, err
	}
	return s.inner.Fig3(sub), nil
}

// WriteFig3 prints one Fig. 3 panel.
func (s *Study) WriteFig3(w io.Writer, subgraph string) error {
	sub, err := s.inner.SubgraphByName(subgraph)
	if err != nil {
		return err
	}
	return casestudy.WriteFig3(w, sub.Name, s.inner.Fig3(sub))
}

// WriteDOT exports a subgraph in Graphviz DOT form with the seed author
// highlighted, as rendered in the paper's Fig. 2.
func (s *Study) WriteDOT(w io.Writer, subgraph string) error {
	sub, err := s.inner.SubgraphByName(subgraph)
	if err != nil {
		return err
	}
	return casestudy.WriteFig2DOT(w, sub)
}

// Community converts a trust subgraph into an S-CDN community, ready to
// Build: authors become researchers, coauthorships become weighted ties.
// institutionalFrac is the top-degree fraction given always-on servers.
func (s *Study) Community(subgraph string, institutionalFrac float64) (*Community, error) {
	sub, err := s.inner.SubgraphByName(subgraph)
	if err != nil {
		return nil, err
	}
	users, edges, err := core.CommunityFromSubgraph(sub, institutionalFrac)
	if err != nil {
		return nil, err
	}
	c := NewCommunity()
	for _, u := range users {
		c.Add(Researcher{
			ID: u.ID, Name: u.Name, Site: u.SiteID,
			Institutional: u.Institutional,
		})
	}
	for _, e := range edges {
		c.Connect(e.A, e.B, e.Type, e.Strength)
	}
	return c, nil
}

// ExportDBLP writes the study's synthetic corpus as DBLP-style XML —
// authors are named "author-<id>" (the ego seed is "author-1") — so the
// full pipeline can be replayed through the real-data path or inspected
// with external tools. It errors for studies built from a real corpus.
func (s *Study) ExportDBLP(w io.Writer) error {
	if s.inner.Synth == nil {
		return fmt.Errorf("scdn: study was built from an external corpus; nothing to export")
	}
	return coauthor.WriteDBLPXML(w, s.inner.Synth.Corpus, nil)
}

// NewStudyFromDBLP derives the case study from a real DBLP XML export:
// the full pipeline — trust pruning, placement, Fig. 3 evaluation — runs
// on actual data instead of the calibrated synthetic corpus. seedAuthor
// is the ego author's DBLP name (e.g. "Kyle Chard"); trainFrom–trainTo is
// the training window and testYear the evaluation year.
func NewStudyFromDBLP(r io.Reader, seedAuthor string,
	trainFrom, trainTo, testYear int, cfg StudyConfig) (*Study, error) {
	parsed, err := coauthor.ParseDBLPXML(r)
	if err != nil {
		return nil, err
	}
	seed, err := parsed.SeedByName(seedAuthor)
	if err != nil {
		return nil, err
	}
	inner := casestudy.DefaultConfig()
	if cfg.Seed != 0 {
		inner.Seed = cfg.Seed
	}
	if cfg.Runs > 0 {
		inner.Runs = cfg.Runs
	}
	if cfg.MaxReplicas > 0 {
		inner.MaxReplicas = cfg.MaxReplicas
	}
	if cfg.HitRadius > 0 {
		inner.HitRadius = cfg.HitRadius
	}
	inner.Extended = cfg.Extended
	s, err := casestudy.NewFromCorpus(inner, parsed.Corpus, seed, trainFrom, trainTo, testYear)
	if err != nil {
		return nil, err
	}
	return &Study{inner: s}, nil
}

// RunCaseStudy reproduces the paper's full evaluation with the default
// configuration, writing Table I and all three Fig. 3 panels to w. It is
// the one-call entry point used by the quickstart example.
func RunCaseStudy(w io.Writer, seed int64, runs int) error {
	s, err := NewStudy(StudyConfig{Seed: seed, Runs: runs})
	if err != nil {
		return err
	}
	if err := s.WriteTableI(w); err != nil {
		return err
	}
	for _, name := range []string{"baseline", "double", "fewauthors"} {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := s.WriteFig3(w, name); err != nil {
			return err
		}
	}
	return nil
}

// StudyDuration is a documentation aid: the virtual window the paper's
// training/test split spans (2009–2011).
const StudyDuration = 3 * 365 * 24 * time.Hour
