// Command scdn-serve runs a live S-CDN delivery cluster: N allocation/
// edge servers on real loopback TCP sockets sharing one social platform,
// middleware, membership registry, and allocation catalog. It prints the
// cluster topology (endpoints, datasets, users) and serves until
// interrupted, then shuts down gracefully.
//
// Usage:
//
//	scdn-serve                         # 3 edges on ephemeral ports
//	scdn-serve -nodes 5 -datasets 30 -pull-through
//	scdn-serve -store dir              # disk-backed replica volumes, sendfile delivery
//	scdn-serve -host 0.0.0.0           # reachable off-box
//	scdn-serve -churn-script churn.txt # scripted node churn (see below)
//
// A churn script injects membership failures on a schedule, one event
// per line — "<offset> <action> <node>", actions kill/stop/restart:
//
//	2s  kill    2
//	7s  restart 2
//
// Drive it with scdn-loadgen, or by hand:
//
//	curl -s -X POST <url>/v1/login -d '{"user":101}'
//	curl -s <url>/v1/fetch/ds-001 -H "Authorization: Bearer <token>"
//	curl -s <url>/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scdn/internal/server"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 3, "edge servers to run")
		sites       = flag.Int("sites", 0, "network sites (0: one per node)")
		catalog     = flag.Int("catalog-servers", 2, "allocation-cluster members")
		users       = flag.Int("users", 8, "client users provisioned on the platform")
		datasets    = flag.Int("datasets", 12, "datasets published into the CDN")
		bytes       = flag.Int64("bytes", 64<<10, "bytes per dataset")
		host        = flag.String("host", "127.0.0.1", "address to bind (ports are ephemeral)")
		seed        = flag.Int64("seed", 42, "auth token seed")
		pullThrough = flag.Bool("pull-through", false, "cache proxied datasets as local replicas")
		group       = flag.String("group", "live-collab", "collaboration group scoping all datasets")
		shards      = flag.Int("catalog-shards", 0, "catalog lock shards, rounded to a power of two (0: default)")
		blockCache  = flag.Int("block-cache", 0, "payload-block cache capacity per edge, in blocks (0: default)")
		store       = flag.String("store", "generated", "payload store: generated (in-memory synthesis) or dir (disk-backed replica volumes, sendfile delivery)")
		storeDir    = flag.String("store-dir", "", "root directory for dir-mode replica volumes (empty: temp dir, removed on shutdown)")
		storeQuota  = flag.Int64("store-quota", 0, "per-node replica volume byte quota in dir mode (0: replica reserve)")
		churnFile   = flag.String("churn-script", "", "churn script file: one '<offset> <action> <node>' per line (kill/stop/restart)")
		noSeed      = flag.Bool("no-seed", false, "start with zero datasets; publish via PUT /v1/datasets (forces -store dir)")
		segSize     = flag.Int64("segment-size", 0, "segmented large-object layout: segment bytes, a multiple of the 64 KiB ingest block (0: default 4 MiB)")
		segThresh   = flag.Int64("segment-threshold", 0, "store and serve datasets at or above this size as segments (0: default 16 MiB, negative: disable)")
		keepPages   = flag.Bool("keep-segment-pages", false, "keep served segment pages in the page cache (skip the post-serve DONTNEED drop)")
	)
	flag.Parse()

	var churnEvents []server.ChurnEvent
	if *churnFile != "" {
		f, err := os.Open(*churnFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scdn-serve:", err)
			os.Exit(1)
		}
		churnEvents, err = server.ParseChurnScript(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "scdn-serve:", err)
			os.Exit(1)
		}
	}

	if *noSeed {
		// Uploads land in replica volumes; an ingest-ready cluster needs
		// the disk-backed store on every edge.
		*store = server.StoreModeDir
	}
	lc, err := server.StartLocalCluster(server.ClusterConfig{
		Nodes: *nodes, Sites: *sites, CatalogServers: *catalog,
		Users: *users, Datasets: *datasets, DatasetBytes: *bytes,
		Seed: *seed, PullThrough: *pullThrough, Group: *group,
		ListenHost: *host, CatalogShards: *shards, BlockCacheBlocks: *blockCache,
		StoreMode: *store, StoreDir: *storeDir, StoreQuota: *storeQuota,
		NoSeedDatasets:   *noSeed,
		SegmentSize:      *segSize,
		SegmentThreshold: *segThresh,
		KeepSegmentPages: *keepPages,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scdn-serve:", err)
		os.Exit(1)
	}

	fmt.Printf("scdn-serve: %d edge servers up (group %q, %d datasets × %d bytes, %d users)\n",
		len(lc.Nodes), *group, *datasets, *bytes, *users)
	if lc.StoreRoot != "" {
		fmt.Printf("  store:    dir mode, replica volumes under %s\n", lc.StoreRoot)
	}
	for i, n := range lc.Nodes {
		fmt.Printf("  edge %d: %s\n", i+1, n.BaseURL())
	}
	if len(lc.DatasetIDs) > 0 {
		fmt.Printf("  datasets: %s .. %s\n", lc.DatasetIDs[0], lc.DatasetIDs[len(lc.DatasetIDs)-1])
	} else {
		fmt.Printf("  datasets: none seeded — publish with PUT /v1/datasets/{id}\n")
	}
	fmt.Printf("  users:    %d .. %d\n", lc.UserIDs[0], lc.UserIDs[len(lc.UserIDs)-1])
	fmt.Println("serving — ctrl-c to stop")

	var churn *server.ChurnRun
	if len(churnEvents) > 0 {
		churn = server.StartChurn(lc, churnEvents)
		fmt.Printf("scdn-serve: churn script armed: %d events from %s\n", len(churnEvents), *churnFile)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if churn != nil {
		churn.Cancel()
		s := churn.Summary()
		fmt.Printf("\nscdn-serve: churn applied: kills=%d stops=%d restarts=%d still-down=%d\n",
			s.Kills, s.Stops, s.Restarts, s.Down)
	}
	fmt.Println("\nscdn-serve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "scdn-serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("scdn-serve: bye")
}
