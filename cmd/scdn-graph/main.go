// Command scdn-graph analyses the case study's coauthorship graphs:
// summary statistics, degree histograms, centrality rankings, community
// structure, and DOT export. It is the exploration companion to
// scdn-casestudy.
//
// Usage:
//
//	scdn-graph                          # stats for all three subgraphs
//	scdn-graph -graph baseline -top 20  # top-degree table
//	scdn-graph -hist                    # degree histogram
//	scdn-graph -communities             # label-propagation communities
//	scdn-graph -dot baseline.dot        # DOT export
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"scdn/internal/casestudy"
	"scdn/internal/community"
	"scdn/internal/graph"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "corpus seed")
		graphName = flag.String("graph", "", "restrict to one subgraph: baseline|double|fewauthors")
		top       = flag.Int("top", 0, "print the top-N nodes by degree/betweenness/closeness")
		hist      = flag.Bool("hist", false, "print the degree histogram")
		comms     = flag.Bool("communities", false, "print community structure (label propagation)")
		cuts      = flag.Bool("cutpoints", false, "print articulation points and bridges (overlay fragility)")
		dotPath   = flag.String("dot", "", "write the subgraph as DOT to this path")
	)
	flag.Parse()

	cfg := casestudy.DefaultConfig()
	cfg.Seed = *seed
	study, err := casestudy.New(cfg)
	if err != nil {
		fatal(err)
	}

	names := []string{"baseline", "double", "fewauthors"}
	if *graphName != "" {
		names = []string{*graphName}
	}
	for _, name := range names {
		sub, err := study.SubgraphByName(name)
		if err != nil {
			fatal(err)
		}
		g := sub.Graph
		comps := g.ConnectedComponents()
		largest := 0
		if len(comps) > 0 {
			largest = len(comps[0])
		}
		fmt.Printf("== %s ==\n", sub.Name)
		fmt.Printf("nodes=%d edges=%d density=%.5f avg-degree=%.2f\n",
			g.NumNodes(), g.NumEdges(), g.Density(),
			2*float64(g.NumEdges())/float64(max(1, g.NumNodes())))
		fmt.Printf("components=%d largest=%d diameter=%d avg-clustering=%.4f\n",
			len(comps), largest, g.Diameter(), g.AverageClustering())

		if *hist {
			printHistogram(g)
		}
		if *top > 0 {
			printTop(g, *top)
		}
		if *comms {
			printCommunities(g, *seed)
		}
		if *cuts {
			aps := g.ArticulationPoints()
			bridges := g.Bridges()
			fmt.Printf("articulation points: %d (overlay partitions if any leaves)\n", len(aps))
			if len(aps) > 0 && len(aps) <= 20 {
				fmt.Printf("  %v\n", aps)
			}
			fmt.Printf("bridges: %d\n", len(bridges))
		}
		if *dotPath != "" && len(names) == 1 {
			f, err := os.Create(*dotPath)
			if err != nil {
				fatal(err)
			}
			if err := casestudy.WriteFig2DOT(f, sub); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *dotPath)
		}
		fmt.Println()
	}
}

func printHistogram(g *graph.Graph) {
	h := g.DegreeHistogram()
	degrees := make([]int, 0, len(h))
	for d := range h {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("degree histogram (degree: count):")
	// Bucket to keep the output compact.
	buckets := map[string]int{}
	var order []string
	bucketOf := func(d int) string {
		switch {
		case d <= 5:
			return fmt.Sprintf("%d", d)
		case d <= 20:
			return fmt.Sprintf("%d-%d", d/5*5, d/5*5+4)
		default:
			return fmt.Sprintf("%d-%d", d/20*20, d/20*20+19)
		}
	}
	for _, d := range degrees {
		b := bucketOf(d)
		if _, ok := buckets[b]; !ok {
			order = append(order, b)
		}
		buckets[b] += h[d]
	}
	for _, b := range order {
		fmt.Printf("  %8s: %d\n", b, buckets[b])
	}
}

func printTop(g *graph.Graph, n int) {
	type row struct {
		node graph.NodeID
		deg  int
		bet  float64
		clo  float64
	}
	bet := g.Betweenness()
	clo := g.Closeness()
	rows := make([]row, 0, g.NumNodes())
	for _, u := range g.Nodes() {
		rows = append(rows, row{u, g.Degree(u), bet[u], clo[u]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].deg != rows[j].deg {
			return rows[i].deg > rows[j].deg
		}
		return rows[i].node < rows[j].node
	})
	if n > len(rows) {
		n = len(rows)
	}
	fmt.Printf("top %d by degree:\n%8s %7s %14s %10s\n", n, "node", "degree", "betweenness", "closeness")
	for _, r := range rows[:n] {
		fmt.Printf("%8d %7d %14.1f %10.4f\n", r.node, r.deg, r.bet, r.clo)
	}
}

func printCommunities(g *graph.Graph, seed int64) {
	rng := newRand(seed)
	p := community.LabelPropagation(g, rng, 100)
	groups := p.Communities()
	fmt.Printf("communities=%d modularity=%.4f sizes:", len(groups), community.Modularity(g, p))
	for i, grp := range groups {
		if i == 12 {
			fmt.Printf(" … (+%d more)", len(groups)-i)
			break
		}
		fmt.Printf(" %d", len(grp))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-graph:", err)
	os.Exit(1)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
