// Command scdn-casestudy regenerates the paper's Section VI evaluation:
// Table I (trust subgraph sizes), Fig. 2 (topology statistics and DOT
// exports), the three Fig. 3 panels (replica hit rate vs. replica count
// per placement algorithm), and the trust-threshold ablations described
// in DESIGN.md.
//
// Usage:
//
//	scdn-casestudy                    # Table I + all Fig. 3 panels
//	scdn-casestudy -table1            # Table I only
//	scdn-casestudy -fig2              # Fig. 2 statistics
//	scdn-casestudy -fig3 baseline     # one Fig. 3 panel
//	scdn-casestudy -ablation          # trust-threshold sweeps
//	scdn-casestudy -dot out/          # write Fig. 2 DOT files
//	scdn-casestudy -extended          # include non-paper algorithms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"scdn/internal/casestudy"
	"scdn/internal/coauthor"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "experiment seed (corpus + placements)")
		runs     = flag.Int("runs", 100, "placements averaged per point (paper: 100)")
		maxReps  = flag.Int("max-replicas", 10, "largest replica count evaluated")
		radius   = flag.Int("hit-radius", 1, "hops from a replica counting as a hit")
		table1   = flag.Bool("table1", false, "print Table I only")
		fig2     = flag.Bool("fig2", false, "print Fig. 2 topology statistics")
		fig3     = flag.String("fig3", "", "print one Fig. 3 panel: baseline|double|fewauthors")
		ablation = flag.Bool("ablation", false, "run trust-threshold sweeps")
		dotDir   = flag.String("dot", "", "directory to write Fig. 2 DOT files into")
		extended = flag.Bool("extended", false, "also evaluate non-paper algorithms")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")

		dblpPath   = flag.String("dblp", "", "run on a real DBLP XML export instead of the synthetic corpus")
		seedAuthor = flag.String("seed-author", "Kyle Chard", "ego author name (with -dblp)")
		trainFrom  = flag.Int("train-from", 2009, "training window start year (with -dblp)")
		trainTo    = flag.Int("train-to", 2010, "training window end year (with -dblp)")
		testYear   = flag.Int("test-year", 2011, "evaluation year (with -dblp)")
	)
	flag.Parse()

	cfg := casestudy.DefaultConfig()
	cfg.Seed = *seed
	cfg.Runs = *runs
	cfg.MaxReplicas = *maxReps
	cfg.HitRadius = *radius
	cfg.Extended = *extended

	var study *casestudy.Study
	var err error
	if *dblpPath != "" {
		study, err = loadDBLPStudy(cfg, *dblpPath, *seedAuthor, *trainFrom, *trainTo, *testYear)
	} else {
		study, err = casestudy.New(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, study); err != nil {
			fatal(err)
		}
		return
	}

	specific := *table1 || *fig2 || *fig3 != "" || *ablation || *dotDir != ""

	if *table1 || !specific {
		fmt.Println("Table I — trust subgraphs (paper: 2335/1163/17973, 811/881/5123, 604/435/1988)")
		if err := study.WriteTableI(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *fig2 {
		fmt.Println("Fig. 2 — subgraph topology")
		fmt.Printf("%-22s %6s %7s %6s %8s %5s %8s %10s\n",
			"Graph", "Nodes", "Edges", "Comps", "Largest", "Span", "SeedDeg", "AvgClust")
		for _, st := range study.Fig2() {
			fmt.Printf("%-22s %6d %7d %6d %8d %5d %8d %10.4f\n",
				st.Name, st.Nodes, st.Edges, st.Components, st.LargestComp,
				st.MaxSpan, st.SeedDegree, st.AvgClustering)
		}
		fmt.Println()
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			fatal(err)
		}
		for _, name := range []string{"baseline", "double", "fewauthors"} {
			sub, err := study.SubgraphByName(name)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dotDir, "fig2-"+name+".dot")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := casestudy.WriteFig2DOT(f, sub); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d nodes, %d edges)\n", path, sub.Graph.NumNodes(), sub.Graph.NumEdges())
		}
		fmt.Println()
	}

	panels := []string{"baseline", "double", "fewauthors"}
	if *fig3 != "" {
		panels = []string{*fig3}
	}
	if *fig3 != "" || !specific {
		for i, name := range panels {
			sub, err := study.SubgraphByName(name)
			if err != nil {
				fatal(err)
			}
			label := map[string]string{
				"baseline":   "Fig. 3(a) — baseline graph",
				"double":     "Fig. 3(b) — double coauthorship",
				"fewauthors": "Fig. 3(c) — number of authors",
			}[name]
			if label == "" {
				label = name
			}
			if err := casestudy.WriteFig3(os.Stdout, label, study.Fig3(sub)); err != nil {
				fatal(err)
			}
			if i < len(panels)-1 {
				fmt.Println()
			}
		}
	}

	if *ablation {
		fmt.Println("Ablation — double-coauthorship threshold (Community Node Degree @", *maxReps, "replicas)")
		fmt.Printf("%10s %7s %7s %7s %9s\n", "threshold", "nodes", "pubs", "edges", "hit-rate%")
		for _, p := range study.CoauthorshipThresholdSweep([]int{1, 2, 3, 4}) {
			fmt.Printf("%10d %7d %7d %7d %9.2f\n",
				p.Threshold, p.Stats.Nodes, p.Stats.Publications, p.Stats.Edges, p.HitRate)
		}
		fmt.Println()
		fmt.Println("Ablation — number-of-authors cutoff (Community Node Degree @", *maxReps, "replicas)")
		fmt.Printf("%10s %7s %7s %7s %9s\n", "cutoff", "nodes", "pubs", "edges", "hit-rate%")
		for _, p := range study.AuthorCountThresholdSweep([]int{3, 4, 5, 6, 8, 10}) {
			fmt.Printf("%10d %7d %7d %7d %9.2f\n",
				p.Threshold, p.Stats.Nodes, p.Stats.Publications, p.Stats.Edges, p.HitRate)
		}
	}
}

// loadDBLPStudy parses a real DBLP XML export and derives the study from
// the named ego author.
func loadDBLPStudy(cfg casestudy.Config, path, author string, from, to, test int) (*casestudy.Study, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	parsed, err := coauthor.ParseDBLPXML(f)
	if err != nil {
		return nil, err
	}
	seed, err := parsed.SeedByName(author)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "parsed %d publications (%d skipped), seed author %q = id %d\n",
		parsed.Corpus.Len(), parsed.Skipped, author, seed)
	return casestudy.NewFromCorpus(cfg, parsed.Corpus, seed, from, to, test)
}

// jsonReport is the machine-readable dump: Table I, Fig. 2, and all
// Fig. 3 panels.
type jsonReport struct {
	TableI []coauthor.Stats       `json:"table1"`
	Fig2   []casestudy.Fig2Stats  `json:"fig2"`
	Fig3   map[string][]jsonCurve `json:"fig3"`
}

type jsonCurve struct {
	Algorithm string    `json:"algorithm"`
	HitRates  []float64 `json:"hitRates"`
	StdDevs   []float64 `json:"stdDevs"`
}

func writeJSON(w io.Writer, study *casestudy.Study) error {
	rep := jsonReport{
		TableI: study.TableI(),
		Fig2:   study.Fig2(),
		Fig3:   make(map[string][]jsonCurve),
	}
	for _, name := range []string{"baseline", "double", "fewauthors"} {
		sub, err := study.SubgraphByName(name)
		if err != nil {
			return err
		}
		for _, c := range study.Fig3(sub) {
			jc := jsonCurve{Algorithm: c.Algorithm}
			for _, p := range c.Points {
				jc.HitRates = append(jc.HitRates, p.HitRate)
				jc.StdDevs = append(jc.StdDevs, p.StdDev)
			}
			rep.Fig3[name] = append(rep.Fig3[name], jc)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-casestudy:", err)
	os.Exit(1)
}
