// Command scdn-lint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and exits non-zero on
// any finding, making it usable as a CI/make gate.
//
// Usage:
//
//	scdn-lint [-list] [patterns...]
//
// Patterns default to ./... relative to the current directory's module.
// Exit status: 0 clean, 1 findings, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"scdn/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scdn-lint [-list] [patterns...]\n\npatterns default to ./...\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scdn-lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "scdn-lint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scdn-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
