// Command scdn-perfgate is the delivery plane's performance ratchet: it
// compares a freshly measured open-loop BENCH record against the
// checked-in baseline and exits non-zero when the candidate regressed
// past the tolerance band — knee throughput down by more than
// -tolerance, knee p99 inflated past -p99-inflation (above an absolute
// floor that keeps loopback-jitter baselines from flaking), any failed
// requests, or a reconciliation mismatch.
//
// Usage (what `make perfgate` runs):
//
//	scdn-loadgen -openloop -store dir -bench-out BENCH_openloop_candidate.json
//	scdn-perfgate -baseline BENCH_delivery.json -candidate BENCH_openloop_candidate.json
//
// A baseline predating the open-loop schema (no open_loop section)
// cannot anchor the ratchet; the candidate then only has to be healthy,
// and checking it in starts the ratchet for the next run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"scdn/internal/loadharness"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_delivery.json", "checked-in open-loop BENCH record")
		candidate = flag.String("candidate", "BENCH_openloop_candidate.json", "freshly measured open-loop record")
		tolerance = flag.Float64("tolerance", 0.5, "allowed fractional knee-throughput regression (0.5 = fail below half the baseline)")
		inflation = flag.Float64("p99-inflation", 4, "allowed knee-p99 growth factor")
	)
	flag.Parse()

	base, err := loadharness.ReadDeliveryRecord(*baseline)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
		// First run on a fresh checkout: nothing to ratchet against yet.
		fmt.Printf("scdn-perfgate: no baseline at %s; checking candidate health only\n", *baseline)
		base = nil
	}
	cand, err := loadharness.ReadDeliveryRecord(*candidate)
	if err != nil {
		fatal(err)
	}
	if err := loadharness.CompareDelivery(base, cand, loadharness.GateOptions{
		Tolerance:       *tolerance,
		MaxP99Inflation: *inflation,
	}); err != nil {
		fatal(err)
	}
	if base != nil && base.OpenLoop != nil && base.OpenLoop.Knee != nil {
		b, c := base.OpenLoop.Knee, cand.OpenLoop.Knee
		fmt.Printf("scdn-perfgate: OK — knee %.1f req/s @ p99 %.2fms (baseline %.1f req/s @ p99 %.2fms, tolerance %.0f%%)\n",
			c.AchievedRPS, c.P99MS, b.AchievedRPS, b.P99MS, *tolerance*100)
	} else {
		k := cand.OpenLoop.Knee
		fmt.Printf("scdn-perfgate: OK — no open-loop baseline; candidate knee %.1f req/s @ p99 %.2fms starts the ratchet\n",
			k.AchievedRPS, k.P99MS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-perfgate:", err)
	os.Exit(1)
}
