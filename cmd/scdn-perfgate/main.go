// Command scdn-perfgate is the delivery plane's performance ratchet: it
// compares a freshly measured open-loop BENCH record against the
// checked-in baseline and exits non-zero when the candidate regressed
// past the tolerance band — knee throughput down by more than
// -tolerance, knee p99 inflated past -p99-inflation (above an absolute
// floor that keeps loopback-jitter baselines from flaking), any failed
// requests, or a reconciliation mismatch.
//
// The gate has two axes. The request axis (-baseline/-candidate)
// ratchets BENCH_delivery.json's knee throughput and p99; the byte axis
// (-large-baseline/-large-candidate) ratchets BENCH_large.json's
// sustained MB/s through the segmented large-object path. Passing only
// one pair runs only that axis.
//
// Usage (what `make perfgate` runs):
//
//	scdn-loadgen -openloop -store dir -bench-out BENCH_openloop_candidate.json
//	scdn-perfgate -baseline BENCH_delivery.json -candidate BENCH_openloop_candidate.json
//
//	scdn-loadgen -large ... -bench-out BENCH_large_candidate.json
//	scdn-perfgate -candidate "" -large-baseline BENCH_large.json -large-candidate BENCH_large_candidate.json
//
// A baseline predating the open-loop schema (no open_loop section)
// cannot anchor the ratchet; the candidate then only has to be healthy,
// and checking it in starts the ratchet for the next run.
//
// When baseline and candidate were measured on different hardware
// (GOMAXPROCS or CPU count differ), the gate warns but still compares:
// the tolerance band is wide enough to absorb runner variance, and a
// visible warning beats a silently meaningless number.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"scdn/internal/loadharness"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_delivery.json", "checked-in open-loop BENCH record (empty skips the request axis)")
		candidate = flag.String("candidate", "BENCH_openloop_candidate.json", "freshly measured open-loop record (empty skips the request axis)")
		largeBase = flag.String("large-baseline", "", "checked-in BENCH_large.json record (byte-throughput axis)")
		largeCand = flag.String("large-candidate", "", "freshly measured large-object record (byte-throughput axis)")
		tolerance = flag.Float64("tolerance", 0.5, "allowed fractional regression on either axis (0.5 = fail below half the baseline)")
		inflation = flag.Float64("p99-inflation", 4, "allowed knee-p99 growth factor (request axis)")
	)
	flag.Parse()
	opt := loadharness.GateOptions{Tolerance: *tolerance, MaxP99Inflation: *inflation}

	ran := false
	if *candidate != "" {
		gateDelivery(*baseline, *candidate, opt)
		ran = true
	}
	if *largeCand != "" {
		gateLarge(*largeBase, *largeCand, opt)
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("nothing to gate: pass -candidate and/or -large-candidate"))
	}
}

// gateDelivery runs the request axis: knee throughput and p99.
func gateDelivery(baseline, candidate string, opt loadharness.GateOptions) {
	var base *loadharness.DeliveryRecord
	if baseline != "" {
		var err error
		base, err = loadharness.ReadDeliveryRecord(baseline)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				fatal(err)
			}
			// First run on a fresh checkout: nothing to ratchet against yet.
			fmt.Printf("scdn-perfgate: no baseline at %s; checking candidate health only\n", baseline)
			base = nil
		}
	}
	cand, err := loadharness.ReadDeliveryRecord(candidate)
	if err != nil {
		fatal(err)
	}
	if base != nil {
		warnHostMismatch(base.Host, cand.Host)
	}
	if err := loadharness.CompareDelivery(base, cand, opt); err != nil {
		fatal(err)
	}
	if base != nil && base.OpenLoop != nil && base.OpenLoop.Knee != nil {
		b, c := base.OpenLoop.Knee, cand.OpenLoop.Knee
		fmt.Printf("scdn-perfgate: OK — knee %.1f req/s @ p99 %.2fms (baseline %.1f req/s @ p99 %.2fms, tolerance %.0f%%)\n",
			c.AchievedRPS, c.P99MS, b.AchievedRPS, b.P99MS, opt.Tolerance*100)
	} else {
		k := cand.OpenLoop.Knee
		fmt.Printf("scdn-perfgate: OK — no open-loop baseline; candidate knee %.1f req/s @ p99 %.2fms starts the ratchet\n",
			k.AchievedRPS, k.P99MS)
	}
}

// gateLarge runs the byte axis: sustained MB/s through the segmented
// large-object serve path.
func gateLarge(baseline, candidate string, opt loadharness.GateOptions) {
	var base *loadharness.LargeRecord
	if baseline != "" {
		var err error
		base, err = loadharness.ReadLargeRecord(baseline)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				fatal(err)
			}
			fmt.Printf("scdn-perfgate: no large baseline at %s; checking candidate health only\n", baseline)
			base = nil
		}
	}
	cand, err := loadharness.ReadLargeRecord(candidate)
	if err != nil {
		fatal(err)
	}
	if base != nil {
		warnHostMismatch(base.Host, cand.Host)
	}
	if err := loadharness.CompareLarge(base, cand, opt); err != nil {
		fatal(err)
	}
	if base != nil {
		fmt.Printf("scdn-perfgate: OK — sustained %.1f MB/s segmented (baseline %.1f MB/s, tolerance %.0f%%)\n",
			cand.SustainedMBps, base.SustainedMBps, opt.Tolerance*100)
	} else {
		fmt.Printf("scdn-perfgate: OK — no large baseline; candidate's %.1f MB/s sustained starts the byte-throughput ratchet\n",
			cand.SustainedMBps)
	}
}

// warnHostMismatch prints a visible warning when two records were
// measured on different hardware contexts. The comparison still runs —
// a warning the reader can weigh beats a gate that silently compares
// incomparable numbers or silently skips.
func warnHostMismatch(base, cand loadharness.Host) {
	if diff := loadharness.HostMismatch(base, cand); diff != "" {
		fmt.Printf("scdn-perfgate: WARNING: baseline and candidate hosts differ (%s) — numbers are not directly comparable\n", diff)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-perfgate:", err)
	os.Exit(1)
}
