package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/ingest"
	"scdn/internal/loadharness"
	"scdn/internal/server"
	"scdn/internal/storage"
)

// ingestParams parameterizes an ingest-mode run (scdn-loadgen -ingest):
// user-published opaque datasets instead of seeded deterministic ones.
type ingestParams struct {
	nodes    int
	workers  int
	datasets int
	bytesPer int64
	fetches  int
	stripes  int
	seed     int64
	churn    string
	benchOut string
}

// runIngest drives the live-user data plane end to end: generate opaque
// (non-regenerable) datasets, upload them through PUT /v1/datasets with
// origin affinity, hammer them with verified striped fetches under a
// churn schedule, wait for repair-by-copy to restore the replication
// floor, then reconcile every dataset's bytes against its manifest.
// Opaque datasets make regeneration impossible, so a green run proves
// every re-replication moved real verified bytes between peers.
func runIngest(p ingestParams) {
	const replicationTarget = 2
	lc, err := server.StartLocalCluster(server.ClusterConfig{
		Nodes: p.nodes, Users: p.workers, Seed: p.seed,
		StoreMode: server.StoreModeDir, NoSeedDatasets: true, PullThrough: true,
		Sweep: server.SweeperConfig{ReplicationTarget: replicationTarget},
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = lc.Shutdown(ctx)
	}()
	fmt.Printf("scdn-loadgen: ingest mode: %d-node dir-store cluster, %d opaque datasets × %d bytes\n",
		p.nodes, p.datasets, p.bytesPer)

	ctx := context.Background()
	before := scrapeAll(ctx, lc.URLs())
	start := time.Now()

	// Phase 1 — upload. Dataset d's bytes come from a seeded generator
	// the serving plane has no access to; its origin is node d%N (origin
	// affinity: the receiving edge becomes the first holder).
	payloads := make([][]byte, p.datasets)
	ids := make([]storage.DatasetID, p.datasets)
	client := server.NewHTTPClient(30 * time.Second)
	tokens := make([]string, len(lc.Nodes))
	for i, nd := range lc.Nodes {
		tok, err := loginHTTP(ctx, client, nd.BaseURL(), int64(lc.UserIDs[0]))
		if err != nil {
			fatal(fmt.Errorf("login on node %d: %w", i+1, err))
		}
		tokens[i] = tok
	}
	var uploadBytes atomic.Int64
	var uploadErrs atomic.Uint64
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.workers)
	for d := 0; d < p.datasets; d++ {
		ids[d] = storage.DatasetID(fmt.Sprintf("up-%03d", d+1))
		buf := make([]byte, p.bytesPer)
		rand.New(rand.NewSource(p.seed + int64(d)*7919)).Read(buf)
		payloads[d] = buf
		wg.Add(1)
		sem <- struct{}{}
		go func(d int) {
			defer wg.Done()
			defer func() { <-sem }()
			origin := d % len(lc.Nodes)
			_, err := cdnclient.Upload(ctx, cdnclient.TransferOptions{
				Client:    client,
				Endpoints: []string{lc.Nodes[origin].BaseURL()},
				Token:     tokens[origin],
				Stripes:   p.stripes,
			}, ids[d], lc.Config.Group, bytes.NewReader(payloads[d]), p.bytesPer)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scdn-loadgen: upload %s: %v\n", ids[d], err)
				uploadErrs.Add(1)
				return
			}
			uploadBytes.Add(p.bytesPer)
		}(d)
	}
	wg.Wait()
	if n := uploadErrs.Load(); n > 0 {
		fatal(fmt.Errorf("%d of %d uploads failed", n, p.datasets))
	}
	// ReplicationStatus (the post-churn floor check) walks DatasetIDs;
	// in ingest mode the uploads define that set.
	lc.DatasetIDs = ids
	fmt.Printf("uploaded %d datasets (%.1f MB) in %.2fs\n",
		p.datasets, float64(uploadBytes.Load())/(1<<20), time.Since(start).Seconds())

	// Phase 2 — verified fetches under churn. Every download is striped
	// across live edges and checked block-by-block against the dataset's
	// manifest; availability gaps while churn is active are retried, a
	// digest mismatch never is — corrupt bytes fail the run immediately.
	var churnRun *server.ChurnRun
	var churnEvents []server.ChurnEvent
	if p.churn != "" {
		spec, err := server.ParseChurnSpec(p.churn)
		if err != nil {
			fatal(err)
		}
		churnEvents = spec.Events(p.nodes, p.seed)
		churnRun = server.StartChurn(lc, churnEvents)
		fmt.Printf("churn schedule: %d events (%s)\n", len(churnEvents), p.churn)
	}
	var pace time.Duration
	if churnRun != nil && len(churnEvents) > 0 && p.fetches > 0 {
		span := churnEvents[len(churnEvents)-1].At + 2*time.Second
		pace = span * time.Duration(p.workers) / time.Duration(p.fetches)
	}
	const (
		retryLimit = 60
		retryDelay = 250 * time.Millisecond
		churnGrace = 10 * time.Second
	)
	liveURLs := func() []string {
		var urls []string
		for _, nd := range lc.Nodes {
			if nd.Running() {
				urls = append(urls, nd.BaseURL())
			}
		}
		if len(urls) == 0 {
			return lc.URLs()
		}
		return urls
	}
	var (
		fetched, failed, mismatches, excused atomic.Uint64
		next                                 atomic.Int64
	)
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.seed + 1000 + int64(w)))
			for {
				i := next.Add(1)
				if i > int64(p.fetches) {
					return
				}
				if pace > 0 {
					time.Sleep(pace)
				}
				d := rng.Intn(p.datasets)
				man, ok := lc.Manifests.Get(ids[d])
				if !ok {
					fmt.Fprintf(os.Stderr, "scdn-loadgen: no manifest for %s\n", ids[d])
					failed.Add(1)
					continue
				}
				opts := cdnclient.TransferOptions{Client: client,
					Token: tokens[w%len(tokens)], Stripes: p.stripes}
				var err error
				for attempt := 0; ; attempt++ {
					opts.Endpoints = liveURLs()
					_, err = cdnclient.Download(ctx, opts, man, cdnclient.Discard)
					if err == nil {
						break
					}
					if errors.Is(err, ingest.ErrDigestMismatch) {
						mismatches.Add(1)
						break
					}
					if churnRun == nil || attempt >= retryLimit || !churnRun.Active(churnGrace) {
						break
					}
					excused.Add(1)
					time.Sleep(retryDelay)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "scdn-loadgen: fetch %s: %v\n", ids[d], err)
					failed.Add(1)
					continue
				}
				fetched.Add(1)
			}
		}(w)
	}
	wg.Wait()

	// Phase 3 — repair settles. Opaque datasets can only be restored by
	// byte copy, so the floor coming back IS the byte-transfer proof.
	var churnSum server.ChurnSummary
	repairOK := true
	if churnRun != nil {
		churnRun.Wait()
		churnSum = churnRun.Summary()
		want := replicationTarget
		if live := lc.LiveNodes(); live < want {
			want = live
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			bad := 0
			for _, st := range lc.ReplicationStatus() {
				if st.Live < want {
					bad++
				}
			}
			if bad == 0 {
				fmt.Printf("post-churn repair: every dataset at >= %d live replicas\n", want)
				break
			}
			if time.Now().After(deadline) {
				fmt.Printf("post-churn repair incomplete: %d datasets below %d live replicas\n", bad, want)
				repairOK = false
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
	}

	// Phase 4 — digest reconciliation: download every dataset once more
	// (stripes spread across whatever edges survived) and compare the
	// reassembled bytes to the original upload. This closes the loop the
	// manifests only promise: the cluster still holds the user's bytes.
	reconcileErrs := 0
	for d := 0; d < p.datasets; d++ {
		man, ok := lc.Manifests.Get(ids[d])
		if !ok {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: reconcile %s: manifest lost\n", ids[d])
			reconcileErrs++
			continue
		}
		dst := make([]byte, p.bytesPer)
		_, err := cdnclient.Download(ctx, cdnclient.TransferOptions{
			Client: client, Endpoints: liveURLs(), Token: tokens[0], Stripes: p.stripes,
		}, man, &memWriterAt{b: dst})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: reconcile %s: %v\n", ids[d], err)
			if errors.Is(err, ingest.ErrDigestMismatch) {
				mismatches.Add(1)
			}
			reconcileErrs++
			continue
		}
		if !bytes.Equal(dst, payloads[d]) {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: reconcile %s: bytes diverge from upload\n", ids[d])
			mismatches.Add(1)
			reconcileErrs++
		}
	}
	elapsed := time.Since(start)

	after := scrapeAll(ctx, lc.URLs())
	delta := diffScrapes(before, after)

	fmt.Printf("\ningest run: %d uploads, %d verified fetches (%d stripes), %d reconciled in %.2fs\n",
		p.datasets, fetched.Load(), p.stripes, p.datasets-reconcileErrs, elapsed.Seconds())
	fmt.Printf("cluster delta: uploads=%d upload-bytes=%d digest-rejects=%d repair-copies=%d copy-bytes=%d regenerated=%d restored=%d\n",
		delta["scdn_ingest_uploads_total"], delta["scdn_ingest_upload_bytes_total"],
		delta["scdn_ingest_digest_rejects_total"], delta["scdn_ingest_repair_copies_total"],
		delta["scdn_ingest_repair_copy_bytes_total"], delta["scdn_ingest_repair_regenerated_total"],
		delta["scdn_repair_replicas_restored_total"])
	if churnRun != nil {
		fmt.Printf("churn: kills=%d restarts=%d excused-retries=%d\n",
			churnSum.Kills, churnSum.Restarts, excused.Load())
	}

	// Gates. A run is green only when every upload landed, every fetch
	// and reconciliation verified, no opaque repair fell back to the
	// generator, and the exposition agrees with what the client did.
	ok := repairOK
	if failed.Load() != 0 {
		fmt.Printf("gate: %d failed fetches\n", failed.Load())
		ok = false
	}
	if mismatches.Load() != 0 {
		fmt.Printf("gate: %d digest mismatches\n", mismatches.Load())
		ok = false
	}
	if reconcileErrs != 0 {
		fmt.Printf("gate: %d datasets failed reconciliation\n", reconcileErrs)
		ok = false
	}
	if got := delta["scdn_ingest_uploads_total"]; got != uint64(p.datasets) {
		fmt.Printf("gate: cluster counted %d uploads, client made %d\n", got, p.datasets)
		ok = false
	}
	if got := delta["scdn_ingest_upload_bytes_total"]; got != uint64(p.datasets)*uint64(p.bytesPer) {
		fmt.Printf("gate: cluster counted %d upload bytes, client sent %d\n",
			got, uint64(p.datasets)*uint64(p.bytesPer))
		ok = false
	}
	if got := delta["scdn_ingest_repair_regenerated_total"]; got != 0 {
		fmt.Printf("gate: %d opaque repairs regenerated bytes (must be byte copies)\n", got)
		ok = false
	}
	if churnRun != nil {
		for _, e := range churnSum.Errs {
			fmt.Println("churn event error:", e)
			ok = false
		}
		if churnSum.Kills > 0 && delta["scdn_ingest_repair_copies_total"] == 0 {
			fmt.Println("gate: churn killed holders but no repair-by-copy ran")
			ok = false
		}
	}

	if p.benchOut != "" {
		if err := loadharness.WriteRecord(p.benchOut, benchIngestRecord{
			SchemaVersion: loadharness.SchemaVersion,
			Host:          loadharness.CurrentHost(),
			Mode:          "ingest", Edges: p.nodes, Workers: p.workers,
			Datasets: p.datasets, BytesPerDataset: p.bytesPer,
			Stripes: p.stripes, Fetches: fetched.Load(),
			ElapsedSeconds:   elapsed.Seconds(),
			Failed:           failed.Load(),
			DigestMismatches: mismatches.Load(),
			Uploads:          delta["scdn_ingest_uploads_total"],
			UploadBytes:      delta["scdn_ingest_upload_bytes_total"],
			RepairCopies:     delta["scdn_ingest_repair_copies_total"],
			RepairCopyBytes:  delta["scdn_ingest_repair_copy_bytes_total"],
			RepairRegen:      delta["scdn_ingest_repair_regenerated_total"],
			Churn:            churnBenchInfo(churnRun != nil, p.churn, churnSum, excused.Load(), delta),
			Reconciled:       ok,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: bench-out: %v\n", err)
			ok = false
		} else {
			fmt.Printf("benchmark record: %s\n", p.benchOut)
		}
	}
	if ok {
		fmt.Println("ingest reconciliation: OK")
	} else {
		os.Exit(1)
	}
}

// benchIngestRecord is the BENCH_ingest.json schema: the live-ingest
// data plane's acceptance record across PRs.
type benchIngestRecord struct {
	SchemaVersion    int                      `json:"schema_version"`
	Host             loadharness.Host         `json:"host"`
	Mode             string                   `json:"mode"`
	Edges            int                      `json:"edges"`
	Workers          int                      `json:"workers"`
	Datasets         int                      `json:"datasets"`
	BytesPerDataset  int64                    `json:"bytes_per_dataset"`
	Stripes          int                      `json:"stripes"`
	Fetches          uint64                   `json:"fetches"`
	ElapsedSeconds   float64                  `json:"elapsed_seconds"`
	Failed           uint64                   `json:"failed"`
	DigestMismatches uint64                   `json:"digest_mismatches"`
	Uploads          uint64                   `json:"uploads"`
	UploadBytes      uint64                   `json:"upload_bytes"`
	RepairCopies     uint64                   `json:"repair_copies"`
	RepairCopyBytes  uint64                   `json:"repair_copy_bytes"`
	RepairRegen      uint64                   `json:"repair_regenerated"`
	Churn            *loadharness.ChurnRecord `json:"churn,omitempty"`
	Reconciled       bool                     `json:"reconciled"`
}

// memWriterAt is an in-memory io.WriterAt over a pre-sized buffer.
type memWriterAt struct {
	mu sync.Mutex
	b  []byte
}

func (w *memWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(w.b)) {
		return 0, fmt.Errorf("write [%d, %d) outside %d-byte buffer", off, off+int64(len(p)), len(w.b))
	}
	copy(w.b[off:], p)
	return len(p), nil
}
