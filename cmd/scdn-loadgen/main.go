// Command scdn-loadgen is a closed-loop, multi-worker load generator for
// the S-CDN serving plane. By default it starts an in-process edge
// cluster on loopback TCP and hammers it; with -targets it drives an
// already-running cluster (e.g. one started by scdn-serve). Each worker
// logs in over the wire, then loops: optionally resolve, fetch a
// dataset — either whole or as -stripes concurrent range requests spread
// across replica holders (GridFTP-style) — verify the payload in-stream
// with constant memory, and record latency. At the end it reports
// throughput and latency percentiles, reconciles its own totals against
// the cluster's /metrics expositions, optionally writes a
// machine-readable benchmark record (-bench-out), and exits non-zero on
// any failed request or accounting mismatch.
//
// Usage:
//
//	scdn-loadgen                                   # 3-node cluster, 8 workers, 600 requests
//	scdn-loadgen -nodes 5 -workers 32 -requests 10000 -pull-through
//	scdn-loadgen -stripes 4                        # parallel striped range fetches
//	scdn-loadgen -store dir                        # disk-backed volumes, sendfile delivery
//	scdn-loadgen -targets http://127.0.0.1:8001,http://127.0.0.1:8002 -datasets 12
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scdn/internal/server"
	"scdn/internal/storage"
	"scdn/internal/stripe"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 3, "in-process edge servers (ignored with -targets)")
		targets     = flag.String("targets", "", "comma-separated base URLs of a running cluster")
		workers     = flag.Int("workers", 8, "concurrent closed-loop workers")
		requests    = flag.Int("requests", 600, "total fetch requests")
		datasets    = flag.Int("datasets", 12, "datasets (published in-process, or assumed ds-001.. on -targets)")
		bytesPer    = flag.Int64("bytes", 64<<10, "bytes per dataset")
		resolveEach = flag.Int("resolve-every", 5, "issue a resolve before every Nth fetch (0 disables; ignored with -stripes > 1)")
		stripesN    = flag.Int("stripes", 1, "fetch each dataset as N parallel range requests across replica holders")
		seed        = flag.Int64("seed", 42, "workload seed")
		pullThrough = flag.Bool("pull-through", true, "enable pull-through caching (in-process mode)")
		verify      = flag.Bool("verify", true, "verify every payload in-stream, byte-for-byte")
		benchOut    = flag.String("bench-out", "BENCH_delivery.json", "write a machine-readable benchmark record here (empty disables)")
		store       = flag.String("store", "generated", "payload store for the in-process cluster: generated or dir")
	)
	flag.Parse()

	var (
		urls       []string
		datasetIDs []storage.DatasetID
		userIDs    []int64
	)
	// payloadMode lands in the benchmark record so perf runs in the two
	// store modes stay distinguishable; against an external cluster the
	// mode is whatever scdn-serve chose, recorded as "targets".
	payloadMode := *store
	if *targets == "" {
		lc, err := server.StartLocalCluster(server.ClusterConfig{
			Nodes: *nodes, Users: *workers, Datasets: *datasets,
			DatasetBytes: *bytesPer, Seed: *seed, PullThrough: *pullThrough,
			StoreMode: *store,
		})
		if err != nil {
			fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = lc.Shutdown(ctx)
		}()
		urls = lc.URLs()
		datasetIDs = lc.DatasetIDs
		for _, u := range lc.UserIDs {
			userIDs = append(userIDs, int64(u))
		}
		fmt.Printf("scdn-loadgen: started %d-node in-process cluster on loopback TCP (store: %s)\n",
			*nodes, *store)
	} else {
		payloadMode = "targets"
		urls = strings.Split(*targets, ",")
		for d := 0; d < *datasets; d++ {
			datasetIDs = append(datasetIDs, storage.DatasetID(fmt.Sprintf("ds-%03d", d+1)))
		}
		// scdn-serve provisions client users 101..100+N.
		for u := 0; u < *workers; u++ {
			userIDs = append(userIDs, int64(101+u))
		}
	}
	if *stripesN < 1 {
		*stripesN = 1
	}
	// Every logical request turns into this many client-facing HTTP
	// fetches (stripes are clipped to the dataset size).
	fetchesPerRequest := int64(*stripesN)
	if fetchesPerRequest > *bytesPer {
		fetchesPerRequest = *bytesPer
	}

	// One run-scoped context flows through every outbound request, so a
	// future interrupt/timeout hook has a single cancellation point.
	ctx := context.Background()

	before := scrapeAll(ctx, urls)

	var (
		issued, failed, resolves atomic.Uint64
		bytesRead                atomic.Int64
		next                     atomic.Int64
		lat                      server.LatencyHist
		wg                       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			// All workers share the serving plane's tuned transport (one
			// raised idle pool, keep-alives), matching what the edges use
			// for their peer hops — striped fetches keep connections warm
			// without every worker growing a private pool.
			client := server.NewHTTPClient(30 * time.Second)
			user := userIDs[w%len(userIDs)]
			tok, err := loginHTTP(ctx, client, urls[w%len(urls)], user)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scdn-loadgen: worker %d login: %v\n", w, err)
				failed.Add(1)
				return
			}
			var accesses uint64
			for {
				i := next.Add(1)
				if i > int64(*requests) {
					break
				}
				ds := datasetIDs[rng.Intn(len(datasetIDs))]
				base := urls[rng.Intn(len(urls))]
				var n int64
				if *stripesN > 1 {
					// Striped mode resolves first: the response's replica
					// list names the holders the stripes fan out across.
					issued.Add(1)
					t0 := time.Now()
					res, rerr := resolveHTTP(ctx, client, base, tok, string(ds))
					if rerr != nil {
						lat.Observe(time.Since(t0).Seconds())
						fmt.Fprintf(os.Stderr, "scdn-loadgen: resolve %s: %v\n", ds, rerr)
						failed.Add(1)
						continue
					}
					resolves.Add(1)
					n, err = fetchStriped(ctx, client, res, urls, tok, ds, *bytesPer, *stripesN, *verify)
					lat.Observe(time.Since(t0).Seconds())
				} else {
					if *resolveEach > 0 && i%int64(*resolveEach) == 0 {
						if _, err := resolveHTTP(ctx, client, base, tok, string(ds)); err != nil {
							fmt.Fprintf(os.Stderr, "scdn-loadgen: resolve %s: %v\n", ds, err)
							failed.Add(1)
							continue
						}
						resolves.Add(1)
					}
					issued.Add(1)
					t0 := time.Now()
					n, err = fetchHTTP(ctx, client, base, tok, ds, *bytesPer, *verify)
					lat.Observe(time.Since(t0).Seconds())
				}
				bytesRead.Add(n)
				accesses++
				if err != nil {
					fmt.Fprintf(os.Stderr, "scdn-loadgen: fetch %s: %v\n", ds, err)
					failed.Add(1)
				}
			}
			// Closed loop done: report usage statistics like the paper's
			// CDN client.
			_ = reportHTTP(ctx, client, urls[w%len(urls)], tok, user, accesses)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeAll(ctx, urls)
	delta := diffScrapes(before, after)

	s := lat.Summary()
	mb := float64(bytesRead.Load()) / (1 << 20)
	fmt.Printf("\n%d workers × closed loop over %d edges: %d requests (%d resolves, %d stripes/request) in %.2fs\n",
		*workers, len(urls), issued.Load(), resolves.Load(), fetchesPerRequest, elapsed.Seconds())
	fmt.Printf("throughput: %.1f req/s, %.1f MB/s (%.1f MB served)\n",
		float64(issued.Load())/elapsed.Seconds(), mb/elapsed.Seconds(), mb)
	fmt.Printf("latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f\n",
		s.Mean*1000, s.P50*1000, s.P95*1000, s.P99*1000)
	fmt.Printf("failed requests: %d\n", failed.Load())

	cacheHits := delta["scdn_payload_cache_hits_total"]
	cacheMisses := delta["scdn_payload_cache_misses_total"]
	hitRate := 0.0
	if cacheHits+cacheMisses > 0 {
		hitRate = float64(cacheHits) / float64(cacheHits+cacheMisses)
	}
	fmt.Printf("cluster delta: fetch=%d failures=%d local=%d peer=%d origin=%d retries=%d ranges=%d latency-samples=%d\n",
		delta["scdn_fetch_requests_total"], delta["scdn_fetch_failures_total"],
		delta["scdn_local_hits_total"], delta["scdn_peer_hits_total"],
		delta["scdn_origin_fetches_total"], delta["scdn_peer_retries_total"],
		delta["scdn_range_requests_total"], delta["scdn_fetch_latency_seconds_count"])
	fmt.Printf("payload-block cache: %d hits / %d misses (%.1f%% hit rate)\n",
		cacheHits, cacheMisses, hitRate*100)

	wantFetches := issued.Load() * uint64(fetchesPerRequest)
	ok := true
	if failed.Load() != 0 {
		ok = false
	}
	if delta["scdn_fetch_requests_total"] != wantFetches {
		fmt.Printf("metrics mismatch: cluster saw %d fetches, loadgen issued %d (%d × %d stripes)\n",
			delta["scdn_fetch_requests_total"], wantFetches, issued.Load(), fetchesPerRequest)
		ok = false
	}
	if delta["scdn_fetch_latency_seconds_count"] != wantFetches {
		fmt.Printf("metrics mismatch: cluster recorded %d latency samples, want %d\n",
			delta["scdn_fetch_latency_seconds_count"], wantFetches)
		ok = false
	}
	if delta["scdn_fetch_failures_total"] != 0 {
		fmt.Printf("metrics mismatch: cluster recorded %d fetch failures\n",
			delta["scdn_fetch_failures_total"])
		ok = false
	}
	if *benchOut != "" {
		if err := writeBenchRecord(*benchOut, benchRecord{
			Workers: *workers, Requests: int(issued.Load()), Stripes: int(fetchesPerRequest),
			Edges: len(urls), Datasets: *datasets, BytesPerDataset: *bytesPer,
			PayloadMode:    payloadMode,
			ElapsedSeconds: elapsed.Seconds(),
			ThroughputRPS:  float64(issued.Load()) / elapsed.Seconds(),
			ThroughputMBps: mb / elapsed.Seconds(),
			LatencyMS: latencyMS{Mean: s.Mean * 1000, P50: s.P50 * 1000,
				P95: s.P95 * 1000, P99: s.P99 * 1000},
			Failed:        failed.Load(),
			CacheHits:     cacheHits,
			CacheMisses:   cacheMisses,
			CacheHitRate:  hitRate,
			RangeRequests: delta["scdn_range_requests_total"],
			Reconciled:    ok,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: bench-out: %v\n", err)
			ok = false
		} else {
			fmt.Printf("benchmark record: %s\n", *benchOut)
		}
	}
	if ok {
		fmt.Println("metrics reconciliation: OK")
	} else {
		os.Exit(1)
	}
}

// benchRecord is the machine-readable BENCH_delivery.json schema: the
// delivery plane's perf trajectory across PRs.
type benchRecord struct {
	Workers         int       `json:"workers"`
	Requests        int       `json:"requests"`
	Stripes         int       `json:"stripes"`
	Edges           int       `json:"edges"`
	Datasets        int       `json:"datasets"`
	BytesPerDataset int64     `json:"bytes_per_dataset"`
	PayloadMode     string    `json:"payload_mode"`
	ElapsedSeconds  float64   `json:"elapsed_seconds"`
	ThroughputRPS   float64   `json:"throughput_rps"`
	ThroughputMBps  float64   `json:"throughput_mbps"`
	LatencyMS       latencyMS `json:"latency_ms"`
	Failed          uint64    `json:"failed"`
	CacheHits       uint64    `json:"payload_cache_hits"`
	CacheMisses     uint64    `json:"payload_cache_misses"`
	CacheHitRate    float64   `json:"payload_cache_hit_rate"`
	RangeRequests   uint64    `json:"range_requests"`
	Reconciled      bool      `json:"reconciled"`
}

type latencyMS struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

func writeBenchRecord(path string, rec benchRecord) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// drain reads the remainder of an unwanted response body to EOF
// (bounded) before close, so the transport returns the connection to
// its idle pool instead of tearing it down.
func drain(r io.Reader) { _, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<20)) }

func loginHTTP(ctx context.Context, client *http.Client, base string, user int64) (string, error) {
	body, _ := json.Marshal(server.LoginRequest{User: user})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/login", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return "", fmt.Errorf("login status %s", resp.Status)
	}
	var lr server.LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return "", err
	}
	return lr.Token, nil
}

func resolveHTTP(ctx context.Context, client *http.Client, base, tok, dataset string) (server.ResolveResponse, error) {
	var rr server.ResolveResponse
	body, _ := json.Marshal(server.ResolveRequest{Dataset: dataset})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/resolve", bytes.NewReader(body))
	if err != nil {
		return rr, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return rr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return rr, fmt.Errorf("resolve status %s", resp.Status)
	}
	return rr, json.NewDecoder(resp.Body).Decode(&rr)
}

// fetchHTTP fetches a whole dataset, verifying the stream incrementally
// (constant memory) when verify is set.
func fetchHTTP(ctx context.Context, client *http.Client, base, tok string, ds storage.DatasetID,
	wantBytes int64, verify bool) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fetch/"+string(ds), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	if verify {
		return server.VerifyPayload(resp.Body, ds, wantBytes)
	}
	return io.Copy(io.Discard, resp.Body)
}

// fetchStriped fans the dataset out as parallel range requests across the
// resolved replica holders (falling back to the whole edge set when the
// holders expose fewer endpoints than stripes need).
func fetchStriped(ctx context.Context, client *http.Client, res server.ResolveResponse, allURLs []string,
	tok string, ds storage.DatasetID, wantBytes int64, stripes int, verify bool) (int64, error) {
	var endpoints []string
	for _, rep := range res.Replicas {
		if rep.URL != "" {
			endpoints = append(endpoints, rep.URL)
		}
	}
	if len(endpoints) < stripes {
		for _, u := range allURLs {
			if !contains(endpoints, u) {
				endpoints = append(endpoints, u)
			}
		}
	}
	r, err := stripe.Fetch(ctx, stripe.Options{
		Client: client, Endpoints: endpoints, Token: tok,
		Stripes: stripes, Verify: verify,
	}, ds, wantBytes)
	return r.Bytes, err
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func reportHTTP(ctx context.Context, client *http.Client, base, tok string, user int64, accesses uint64) error {
	body, _ := json.Marshal(server.ReportRequest{Client: user, Accesses: accesses})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	drain(resp.Body)
	resp.Body.Close()
	return nil
}

// scrapeAll sums plain counter lines from every node's /metrics.
func scrapeAll(ctx context.Context, urls []string) map[string]uint64 {
	out := make(map[string]uint64)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, base := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 || strings.Contains(fields[0], "{") {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			out[fields[0]] += uint64(v)
		}
		resp.Body.Close()
	}
	return out
}

// diffScrapes subtracts the pre-run scrape so the reconciliation works
// against an already-warm external cluster too.
func diffScrapes(before, after map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-loadgen:", err)
	os.Exit(1)
}
