// Command scdn-loadgen is a closed-loop, multi-worker load generator for
// the S-CDN serving plane. By default it starts an in-process edge
// cluster on loopback TCP and hammers it; with -targets it drives an
// already-running cluster (e.g. one started by scdn-serve). Each worker
// logs in over the wire, then loops: optionally resolve, fetch a
// dataset — either whole or as -stripes concurrent range requests spread
// across replica holders (GridFTP-style) — verify the payload in-stream
// with constant memory, and record latency. At the end it reports
// throughput and latency percentiles, reconciles its own totals against
// the cluster's /metrics expositions, optionally writes a
// machine-readable benchmark record (-bench-out), and exits non-zero on
// any failed request or accounting mismatch.
//
// Usage:
//
//	scdn-loadgen                                   # 3-node cluster, 8 workers, 600 requests
//	scdn-loadgen -nodes 5 -workers 32 -requests 10000 -pull-through
//	scdn-loadgen -stripes 4                        # parallel striped range fetches
//	scdn-loadgen -store dir                        # disk-backed volumes, sendfile delivery
//	scdn-loadgen -churn 'kill=2,restart=5s'        # crash nodes mid-run; repair must heal
//	scdn-loadgen -targets http://127.0.0.1:8001,http://127.0.0.1:8002 -datasets 12
//
// With -churn, the generator crashes live nodes on a schedule while the
// workers keep fetching: failures that churn can explain are excused and
// retried against surviving edges, everything else still fails the run,
// and after the schedule finishes the run only passes if the background
// repair sweepers have restored every dataset to the replication floor.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scdn/internal/loadharness"
	"scdn/internal/server"
	"scdn/internal/storage"
	"scdn/internal/stripe"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 3, "in-process edge servers (ignored with -targets)")
		targets     = flag.String("targets", "", "comma-separated base URLs of a running cluster")
		workers     = flag.Int("workers", 8, "concurrent closed-loop workers")
		requests    = flag.Int("requests", 600, "total fetch requests")
		datasets    = flag.Int("datasets", 12, "datasets (published in-process, or assumed ds-001.. on -targets)")
		bytesPer    = flag.Int64("bytes", 64<<10, "bytes per dataset")
		resolveEach = flag.Int("resolve-every", 5, "issue a resolve before every Nth fetch (0 disables; ignored with -stripes > 1)")
		stripesN    = flag.Int("stripes", 1, "fetch each dataset as N parallel range requests across replica holders")
		seed        = flag.Int64("seed", 42, "workload seed")
		pullThrough = flag.Bool("pull-through", true, "enable pull-through caching (in-process mode)")
		verify      = flag.Bool("verify", true, "verify every payload in-stream, byte-for-byte")
		benchOut    = flag.String("bench-out", "BENCH_delivery.json", "write a machine-readable benchmark record here (empty disables)")
		store       = flag.String("store", "generated", "payload store for the in-process cluster: generated or dir")
		churnFlag   = flag.String("churn", "", "inject node churn, e.g. 'kill=2,restart=5s' (in-process mode only)")
		ingestMode  = flag.Bool("ingest", false, "ingest mode: upload opaque datasets, fetch under churn, require repair-by-copy")
		openLoop    = flag.Bool("openloop", false, "open-loop mode: sweep seeded arrival rates, latency from intended start times")
		ratesFlag   = flag.String("rates", "200,400,800,1600", "arrival-rate ladder in req/s for -openloop / -large")
		olDuration  = flag.Duration("openloop-duration", 2*time.Second, "per-rate schedule duration for -openloop / -large")
		maxConns    = flag.Int("max-conns", 64, "open-loop connection pool bound (queueing past it is charged to latency)")
		distFlag    = flag.String("dist", loadharness.DistExponential, "inter-arrival distribution for -openloop: exp or uniform")
		largeMode   = flag.Bool("large", false, "large-object mode: open-loop byte-throughput sweep with a seeded whole/ranged/segment-walk mix")
		segSize     = flag.Int64("segment-size", storage.DefaultSegmentSize, "segment size for -large (multiple of the 64 KiB ingest block)")
		storeQuota  = flag.Int64("store-quota", 0, "per-node disk-volume quota for -large (0: cluster default)")
	)
	flag.Parse()

	if *largeMode {
		if *churnFlag != "" || *ingestMode || *openLoop || *targets != "" {
			fatal(fmt.Errorf("-large cannot be combined with -churn, -ingest, -openloop, or -targets"))
		}
		// Flags left at defaults get large-object-appropriate values:
		// multi-hundred-MiB datasets, a rate ladder scaled to heavy
		// requests, and no in-stream verification (hashing every byte on
		// the client would measure SHA-256, not the serve path).
		touched := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { touched[f.Name] = true })
		if !touched["bytes"] {
			*bytesPer = 256 << 20
		}
		if !touched["rates"] {
			*ratesFlag = "1,2,4,8"
		}
		if !touched["datasets"] {
			*datasets = 2
		}
		if !touched["verify"] {
			*verify = false
		}
		if !touched["bench-out"] {
			*benchOut = "BENCH_large.json"
		}
		rates, err := parseRates(*ratesFlag)
		if err != nil {
			fatal(err)
		}
		runLarge(largeParams{
			nodes: *nodes, datasets: *datasets, bytesPer: *bytesPer,
			segSize: *segSize, storeQuota: *storeQuota,
			rates: rates, duration: *olDuration, maxConns: *maxConns,
			dist: *distFlag, seed: *seed, verify: *verify, benchOut: *benchOut,
		})
		return
	}

	if *openLoop {
		if *churnFlag != "" || *ingestMode {
			fatal(fmt.Errorf("-openloop cannot be combined with -churn or -ingest"))
		}
		rates, err := parseRates(*ratesFlag)
		if err != nil {
			fatal(err)
		}
		runOpenLoop(openLoopParams{
			nodes: *nodes, targets: *targets, datasets: *datasets,
			bytesPer: *bytesPer, rates: rates, duration: *olDuration,
			maxConns: *maxConns, dist: *distFlag, seed: *seed,
			pull: *pullThrough, verify: *verify, store: *store,
			benchOut: *benchOut,
		})
		return
	}

	if *ingestMode {
		if *targets != "" {
			fatal(fmt.Errorf("-ingest drives the in-process cluster; it cannot be combined with -targets"))
		}
		out := *benchOut
		if out == "BENCH_delivery.json" {
			out = "BENCH_ingest.json"
		}
		stripes := *stripesN
		if stripes < 1 {
			stripes = 1
		}
		runIngest(ingestParams{
			nodes: *nodes, workers: *workers, datasets: *datasets,
			bytesPer: *bytesPer, fetches: *requests, stripes: stripes,
			seed: *seed, churn: *churnFlag, benchOut: out,
		})
		return
	}

	var (
		urls        []string
		datasetIDs  []storage.DatasetID
		userIDs     []int64
		lc          *server.LocalCluster
		churnRun    *server.ChurnRun
		churnEvents []server.ChurnEvent
	)
	var churnSpec server.ChurnSpec
	if *churnFlag != "" {
		if *targets != "" {
			fatal(fmt.Errorf("-churn drives the in-process cluster; it cannot be combined with -targets"))
		}
		var err error
		if churnSpec, err = server.ParseChurnSpec(*churnFlag); err != nil {
			fatal(err)
		}
		if *stripesN > 1 {
			fmt.Println("scdn-loadgen: churn mode forces -stripes 1")
			*stripesN = 1
		}
		// Resolve-before-fetch is noise under churn (a resolve can 503
		// while holders are dead); the fetch path's own retries are the
		// experiment.
		*resolveEach = 0
	}
	// payloadMode lands in the benchmark record so perf runs in the two
	// store modes stay distinguishable; against an external cluster the
	// mode is whatever scdn-serve chose, recorded as "targets".
	payloadMode := *store
	// The loadgen pins the sweeper's replication floor explicitly so the
	// post-churn acceptance check below tests against the same number.
	const replicationTarget = 2
	if *targets == "" {
		var err error
		lc, err = server.StartLocalCluster(server.ClusterConfig{
			Nodes: *nodes, Users: *workers, Datasets: *datasets,
			DatasetBytes: *bytesPer, Seed: *seed, PullThrough: *pullThrough,
			StoreMode: *store,
			Sweep:     server.SweeperConfig{ReplicationTarget: replicationTarget},
		})
		if err != nil {
			fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = lc.Shutdown(ctx)
		}()
		urls = lc.URLs()
		datasetIDs = lc.DatasetIDs
		for _, u := range lc.UserIDs {
			userIDs = append(userIDs, int64(u))
		}
		fmt.Printf("scdn-loadgen: started %d-node in-process cluster on loopback TCP (store: %s)\n",
			*nodes, *store)
		if *churnFlag != "" {
			churnEvents = churnSpec.Events(*nodes, *seed)
			churnRun = server.StartChurn(lc, churnEvents)
			fmt.Printf("scdn-loadgen: churn schedule: %d events (%s)\n", len(churnEvents), *churnFlag)
		}
	} else {
		payloadMode = "targets"
		urls = strings.Split(*targets, ",")
		for d := 0; d < *datasets; d++ {
			datasetIDs = append(datasetIDs, storage.DatasetID(fmt.Sprintf("ds-%03d", d+1)))
		}
		// scdn-serve provisions client users 101..100+N.
		for u := 0; u < *workers; u++ {
			userIDs = append(userIDs, int64(101+u))
		}
	}
	if *stripesN < 1 {
		*stripesN = 1
	}
	// Every logical request turns into this many client-facing HTTP
	// fetches (stripes are clipped to the dataset size).
	fetchesPerRequest := int64(*stripesN)
	if fetchesPerRequest > *bytesPer {
		fetchesPerRequest = *bytesPer
	}

	// One run-scoped context flows through every outbound request, so a
	// future interrupt/timeout hook has a single cancellation point.
	ctx := context.Background()

	before := scrapeAll(ctx, urls)

	var (
		issued, failed, resolves atomic.Uint64
		excused                  atomic.Uint64
		bytesRead                atomic.Int64
		next                     atomic.Int64
		lat                      server.LatencyHist
		wg                       sync.WaitGroup
	)
	// Churn-mode retry policy: a request that fails while churn can
	// explain it (a member down, or a transition within the grace window)
	// is re-issued against a live edge instead of counting as a failure.
	// The budget outlasts kill + detection + restart comfortably.
	const (
		churnRetryLimit = 60
		churnRetryDelay = 250 * time.Millisecond
		churnGrace      = 10 * time.Second
	)
	// Pace churn-mode workers so the request stream spans the whole churn
	// schedule — an unpaced loopback run finishes in milliseconds and the
	// kills would land on an idle cluster, proving nothing.
	var churnPace time.Duration
	if churnRun != nil && len(churnEvents) > 0 && *requests > 0 {
		span := churnEvents[len(churnEvents)-1].At + 2*time.Second
		churnPace = span * time.Duration(*workers) / time.Duration(*requests)
	}
	// pickBase chooses a fetch target; under churn, a currently-running
	// node (restarted members listen on fresh ports).
	pickBase := func(rng *rand.Rand) string {
		if churnRun == nil {
			return urls[rng.Intn(len(urls))]
		}
		var live []string
		for _, nd := range lc.Nodes {
			if nd.Running() {
				live = append(live, nd.BaseURL())
			}
		}
		if len(live) == 0 {
			return urls[rng.Intn(len(urls))]
		}
		return live[rng.Intn(len(live))]
	}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			// All workers share the serving plane's tuned transport (one
			// raised idle pool, keep-alives), matching what the edges use
			// for their peer hops — striped fetches keep connections warm
			// without every worker growing a private pool.
			client := server.NewHTTPClient(30 * time.Second)
			user := userIDs[w%len(userIDs)]
			tok, err := loginHTTP(ctx, client, urls[w%len(urls)], user)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scdn-loadgen: worker %d login: %v\n", w, err)
				failed.Add(1)
				return
			}
			var accesses uint64
			for {
				i := next.Add(1)
				if i > int64(*requests) {
					break
				}
				if churnPace > 0 {
					time.Sleep(churnPace)
				}
				ds := datasetIDs[rng.Intn(len(datasetIDs))]
				base := pickBase(rng)
				var n int64
				if *stripesN > 1 {
					// Striped mode resolves first: the response's replica
					// list names the holders the stripes fan out across.
					issued.Add(1)
					t0 := time.Now()
					res, rerr := resolveHTTP(ctx, client, base, tok, string(ds))
					if rerr != nil {
						lat.Observe(time.Since(t0).Seconds())
						fmt.Fprintf(os.Stderr, "scdn-loadgen: resolve %s: %v\n", ds, rerr)
						failed.Add(1)
						continue
					}
					resolves.Add(1)
					n, err = fetchStriped(ctx, client, res, urls, tok, ds, *bytesPer, *stripesN, *verify)
					lat.Observe(time.Since(t0).Seconds())
				} else {
					if *resolveEach > 0 && i%int64(*resolveEach) == 0 {
						if _, err := resolveHTTP(ctx, client, base, tok, string(ds)); err != nil {
							fmt.Fprintf(os.Stderr, "scdn-loadgen: resolve %s: %v\n", ds, err)
							failed.Add(1)
							continue
						}
						resolves.Add(1)
					}
					issued.Add(1)
					t0 := time.Now()
					n, err = fetchHTTP(ctx, client, base, tok, ds, *bytesPer, *verify)
					lat.Observe(time.Since(t0).Seconds())
				}
				if err != nil && churnRun != nil {
					for attempt := 0; attempt < churnRetryLimit && err != nil && churnRun.Active(churnGrace); attempt++ {
						excused.Add(1)
						time.Sleep(churnRetryDelay)
						base = pickBase(rng)
						n, err = fetchHTTP(ctx, client, base, tok, ds, *bytesPer, *verify)
					}
				}
				bytesRead.Add(n)
				accesses++
				if err != nil {
					fmt.Fprintf(os.Stderr, "scdn-loadgen: fetch %s: %v\n", ds, err)
					failed.Add(1)
				}
			}
			// Closed loop done: report usage statistics like the paper's
			// CDN client.
			_ = reportHTTP(ctx, client, urls[w%len(urls)], tok, user, accesses)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Under churn, let the schedule finish (late restarts), then require
	// the repair sweepers to bring every dataset back to the replication
	// floor before judging the run.
	var churnSum server.ChurnSummary
	repairOK := true
	if churnRun != nil {
		churnRun.Wait()
		churnSum = churnRun.Summary()
		want := replicationTarget
		if live := lc.LiveNodes(); live < want {
			want = live
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			bad := 0
			for _, st := range lc.ReplicationStatus() {
				if st.Live < want {
					bad++
				}
			}
			if bad == 0 {
				fmt.Printf("post-churn repair: every dataset at >= %d live replicas\n", want)
				break
			}
			if time.Now().After(deadline) {
				fmt.Printf("post-churn repair incomplete: %d datasets below %d live replicas\n", bad, want)
				repairOK = false
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		urls = lc.URLs() // restarted members listen on fresh ports
	}

	after := scrapeAll(ctx, urls)
	delta := diffScrapes(before, after)

	s := lat.Summary()
	mb := float64(bytesRead.Load()) / (1 << 20)
	fmt.Printf("\n%d workers × closed loop over %d edges: %d requests (%d resolves, %d stripes/request) in %.2fs\n",
		*workers, len(urls), issued.Load(), resolves.Load(), fetchesPerRequest, elapsed.Seconds())
	fmt.Printf("throughput: %.1f req/s, %.1f MB/s (%.1f MB served)\n",
		float64(issued.Load())/elapsed.Seconds(), mb/elapsed.Seconds(), mb)
	fmt.Printf("latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f\n",
		s.Mean*1000, s.P50*1000, s.P95*1000, s.P99*1000)
	fmt.Printf("failed requests: %d\n", failed.Load())

	cacheHits := delta["scdn_payload_cache_hits_total"]
	cacheMisses := delta["scdn_payload_cache_misses_total"]
	hitRate := loadharness.HitRate(cacheHits, cacheMisses)
	fmt.Printf("cluster delta: fetch=%d failures=%d local=%d peer=%d origin=%d retries=%d ranges=%d latency-samples=%d\n",
		delta["scdn_fetch_requests_total"], delta["scdn_fetch_failures_total"],
		delta["scdn_local_hits_total"], delta["scdn_peer_hits_total"],
		delta["scdn_origin_fetches_total"], delta["scdn_peer_retries_total"],
		delta["scdn_range_requests_total"], delta["scdn_fetch_latency_seconds_count"])
	fmt.Printf("payload-block cache: %d hits / %d misses (%.1f%% hit rate)\n",
		cacheHits, cacheMisses, hitRate*100)
	if churnRun != nil {
		fmt.Printf("churn: kills=%d stops=%d restarts=%d still-down=%d excused-failures=%d\n",
			churnSum.Kills, churnSum.Stops, churnSum.Restarts, churnSum.Down, excused.Load())
		fmt.Printf("repair delta: sweeps=%d dead=%d readmitted=%d restored=%d readopted=%d failures=%d churn-503=%d suspect-probes=%d\n",
			delta["scdn_repair_sweeps_total"], delta["scdn_repair_dead_members_total"],
			delta["scdn_repair_readmissions_total"], delta["scdn_repair_replicas_restored_total"],
			delta["scdn_repair_readopted_replicas_total"], delta["scdn_repair_failures_total"],
			delta["scdn_churn_unavailable_total"], delta["scdn_probe_failures_total"])
	}

	wantFetches := issued.Load() * uint64(fetchesPerRequest)
	ok := true
	if failed.Load() != 0 {
		ok = false
	}
	if churnRun == nil {
		if delta["scdn_fetch_requests_total"] != wantFetches {
			fmt.Printf("metrics mismatch: cluster saw %d fetches, loadgen issued %d (%d × %d stripes)\n",
				delta["scdn_fetch_requests_total"], wantFetches, issued.Load(), fetchesPerRequest)
			ok = false
		}
		if delta["scdn_fetch_latency_seconds_count"] != wantFetches {
			fmt.Printf("metrics mismatch: cluster recorded %d latency samples, want %d\n",
				delta["scdn_fetch_latency_seconds_count"], wantFetches)
			ok = false
		}
		if delta["scdn_fetch_failures_total"] != 0 {
			fmt.Printf("metrics mismatch: cluster recorded %d fetch failures\n",
				delta["scdn_fetch_failures_total"])
			ok = false
		}
	} else {
		// Exact fetch-count reconciliation is impossible when requests die
		// mid-flight with their server; instead every failure must be
		// explained. Client side: zero unexcused failures (checked above).
		// Server side: fetch failures can only be churn casualties, so
		// they are bounded by the client's excused retries.
		for _, e := range churnSum.Errs {
			fmt.Println("churn event error:", e)
			ok = false
		}
		if !repairOK {
			ok = false
		}
		if delta["scdn_fetch_failures_total"] > excused.Load() {
			fmt.Printf("metrics mismatch: %d cluster fetch failures exceed %d churn-excused client failures\n",
				delta["scdn_fetch_failures_total"], excused.Load())
			ok = false
		}
		if churnSum.AllRestarted {
			// With every member back, the churn counters are fully
			// scrapeable and must match the schedule exactly.
			if delta["scdn_churn_kills_total"] != uint64(churnSum.Kills) {
				fmt.Printf("metrics mismatch: cluster counted %d kills, churn injected %d\n",
					delta["scdn_churn_kills_total"], churnSum.Kills)
				ok = false
			}
			if delta["scdn_churn_restarts_total"] != uint64(churnSum.Restarts) {
				fmt.Printf("metrics mismatch: cluster counted %d restarts, churn applied %d\n",
					delta["scdn_churn_restarts_total"], churnSum.Restarts)
				ok = false
			}
		}
	}
	if *benchOut != "" {
		if err := loadharness.WriteRecord(*benchOut, loadharness.DeliveryRecord{
			SchemaVersion: loadharness.SchemaVersion,
			Host:          loadharness.CurrentHost(),
			Mode:          "closed-loop",
			Workers:       *workers, Requests: int(issued.Load()), Stripes: int(fetchesPerRequest),
			Edges: len(urls), Datasets: *datasets, BytesPerDataset: *bytesPer,
			PayloadMode:    payloadMode,
			ElapsedSeconds: elapsed.Seconds(),
			ThroughputRPS:  float64(issued.Load()) / elapsed.Seconds(),
			ThroughputMBps: mb / elapsed.Seconds(),
			LatencyMS: loadharness.Latency{Mean: s.Mean * 1000, P50: s.P50 * 1000,
				P95: s.P95 * 1000, P99: s.P99 * 1000},
			Failed:        failed.Load(),
			CacheHits:     cacheHits,
			CacheMisses:   cacheMisses,
			CacheHitRate:  hitRate,
			RangeRequests: delta["scdn_range_requests_total"],
			Reconciled:    ok,
			Churn:         churnBenchInfo(churnRun != nil, *churnFlag, churnSum, excused.Load(), delta),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: bench-out: %v\n", err)
			ok = false
		} else {
			fmt.Printf("benchmark record: %s\n", *benchOut)
		}
	}
	if ok {
		fmt.Println("metrics reconciliation: OK")
	} else {
		os.Exit(1)
	}
}

// churnBenchInfo shapes the optional churn section of a BENCH record.
func churnBenchInfo(ran bool, spec string, sum server.ChurnSummary, excused uint64,
	delta map[string]uint64) *loadharness.ChurnRecord {
	if !ran {
		return nil
	}
	return &loadharness.ChurnRecord{
		Spec:             spec,
		Kills:            sum.Kills,
		Restarts:         sum.Restarts,
		AllRestarted:     sum.AllRestarted,
		ExcusedFailures:  excused,
		DeadMembers:      delta["scdn_repair_dead_members_total"],
		Readmissions:     delta["scdn_repair_readmissions_total"],
		ReplicasRestored: delta["scdn_repair_replicas_restored_total"],
		Churn503s:        delta["scdn_churn_unavailable_total"],
	}
}

// drain reads the remainder of an unwanted response body to EOF
// (bounded) before close, so the transport returns the connection to
// its idle pool instead of tearing it down.
func drain(r io.Reader) { _, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<20)) }

func loginHTTP(ctx context.Context, client *http.Client, base string, user int64) (string, error) {
	body, _ := json.Marshal(server.LoginRequest{User: user})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/login", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return "", fmt.Errorf("login status %s", resp.Status)
	}
	var lr server.LoginResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return "", err
	}
	return lr.Token, nil
}

func resolveHTTP(ctx context.Context, client *http.Client, base, tok, dataset string) (server.ResolveResponse, error) {
	var rr server.ResolveResponse
	body, _ := json.Marshal(server.ResolveRequest{Dataset: dataset})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/resolve", bytes.NewReader(body))
	if err != nil {
		return rr, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return rr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return rr, fmt.Errorf("resolve status %s", resp.Status)
	}
	return rr, json.NewDecoder(resp.Body).Decode(&rr)
}

// fetchHTTP fetches a whole dataset, verifying the stream incrementally
// (constant memory) when verify is set.
func fetchHTTP(ctx context.Context, client *http.Client, base, tok string, ds storage.DatasetID,
	wantBytes int64, verify bool) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fetch/"+string(ds), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	if verify {
		return server.VerifyPayload(resp.Body, ds, wantBytes)
	}
	return io.Copy(io.Discard, resp.Body)
}

// fetchStriped fans the dataset out as parallel range requests across the
// resolved replica holders (falling back to the whole edge set when the
// holders expose fewer endpoints than stripes need).
func fetchStriped(ctx context.Context, client *http.Client, res server.ResolveResponse, allURLs []string,
	tok string, ds storage.DatasetID, wantBytes int64, stripes int, verify bool) (int64, error) {
	var endpoints []string
	for _, rep := range res.Replicas {
		if rep.URL != "" {
			endpoints = append(endpoints, rep.URL)
		}
	}
	if len(endpoints) < stripes {
		for _, u := range allURLs {
			if !contains(endpoints, u) {
				endpoints = append(endpoints, u)
			}
		}
	}
	opts := stripe.Options{
		Client: client, Endpoints: endpoints, Token: tok,
		Stripes: stripes,
	}
	if verify {
		opts.NewVerifier = func(off, length int64) (io.WriteCloser, error) {
			return server.NewRangeVerifier(ds, off, length), nil
		}
	}
	r, err := stripe.Fetch(ctx, opts, ds, wantBytes)
	return r.Bytes, err
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func reportHTTP(ctx context.Context, client *http.Client, base, tok string, user int64, accesses uint64) error {
	body, _ := json.Marshal(server.ReportRequest{Client: user, Accesses: accesses})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	drain(resp.Body)
	resp.Body.Close()
	return nil
}

// scrapeAll sums plain counter lines from every node's /metrics.
func scrapeAll(ctx context.Context, urls []string) map[string]uint64 {
	out := make(map[string]uint64)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, base := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 || strings.Contains(fields[0], "{") {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			out[fields[0]] += uint64(v)
		}
		resp.Body.Close()
	}
	return out
}

// diffScrapes subtracts the pre-run scrape so the reconciliation works
// against an already-warm external cluster too.
func diffScrapes(before, after map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-loadgen:", err)
	os.Exit(1)
}
