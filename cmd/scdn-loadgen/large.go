package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"scdn/internal/loadharness"
	"scdn/internal/server"
	"scdn/internal/storage"
)

// largeParams parameterizes a large-object run (scdn-loadgen -large):
// an open-loop sweep whose request population is a seeded mix of
// whole-object GETs, ranged window fetches, and segment walks over
// datasets big enough to be stored and served segmented. The number
// that matters here is bytes per second, not requests per second — the
// sweep's knee step's wall-clock MB/s is what BENCH_large.json ratchets.
type largeParams struct {
	nodes      int
	datasets   int
	bytesPer   int64
	segSize    int64
	storeQuota int64
	rates      []float64
	duration   time.Duration
	maxConns   int
	dist       string
	seed       int64
	verify     bool
	benchOut   string
}

// Request flavors in the seeded mix.
const (
	mixWhole = iota
	mixRanged
	mixSegmentWalk
)

// largeMixEntry is one precomputed request: flavor, dataset, and (for
// ranged fetches) a segment-size window's offset. Precomputing the
// table keeps the open-loop hot path free of RNG state and makes the
// same seed replay the same byte pattern exactly.
type largeMixEntry struct {
	flavor int
	ds     int
	off    int64
}

// buildLargeMix deals the request mix deterministically: 20% whole
// objects, 50% ranged windows, 30% segment walks — reads dominated by
// partial access, exactly the pattern segmentation exists for.
func buildLargeMix(seed int64, n, datasets int, bytesPer, segSize int64) []largeMixEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]largeMixEntry, n)
	for i := range out {
		e := largeMixEntry{ds: rng.Intn(datasets)}
		switch p := rng.Intn(10); {
		case p < 2:
			e.flavor = mixWhole
		case p < 7:
			e.flavor = mixRanged
			// A segment-size window at an arbitrary (unaligned) offset:
			// the serve path must stitch it from up to two segments.
			if max := bytesPer - segSize; max > 0 {
				e.off = rng.Int63n(max + 1)
			}
		default:
			e.flavor = mixSegmentWalk
		}
		out[i] = e
	}
	return out
}

// runLarge drives the large-object byte-throughput bench: start a
// dir-store cluster sized so every dataset crosses the segment
// threshold, warm each edge once per dataset (materializing segments),
// sweep the arrival ladder with the seeded mix, locate the knee,
// reconcile request counts against /metrics, and write BENCH_large.json
// with the store counters that prove the segmented path ran. Exits
// non-zero on any failed request or accounting mismatch.
func runLarge(p largeParams) {
	if p.bytesPer < p.segSize {
		fatal(fmt.Errorf("-large needs -bytes (%d) >= segment size (%d): small datasets never segment", p.bytesPer, p.segSize))
	}
	segsPer := storage.SegmentCount(p.bytesPer, p.segSize)
	lc, err := server.StartLocalCluster(server.ClusterConfig{
		Nodes: p.nodes, Users: 8, Datasets: p.datasets,
		DatasetBytes: p.bytesPer, Seed: p.seed, PullThrough: true,
		StoreMode:  server.StoreModeDir,
		StoreQuota: p.storeQuota,
		// Threshold at the segment size: every dataset in this run is
		// stored and served segmented.
		SegmentSize: p.segSize, SegmentThreshold: p.segSize,
		Sweep: server.SweeperConfig{ReplicationTarget: 2},
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = lc.Shutdown(ctx)
	}()
	urls := lc.URLs()
	datasetIDs := lc.DatasetIDs
	fmt.Printf("scdn-loadgen: started %d-node dir-store cluster: %d datasets × %d MiB, %d×%d MiB segments each\n",
		p.nodes, p.datasets, p.bytesPer>>20, segsPer, p.segSize>>20)

	ctx := context.Background()
	client := server.NewHTTPClient(60 * time.Second)
	tokens := make([]string, len(urls))
	for i, base := range urls {
		tok, err := loginHTTP(ctx, client, base, int64(lc.UserIDs[i%len(lc.UserIDs)]))
		if err != nil {
			fatal(fmt.Errorf("login on %s: %w", base, err))
		}
		tokens[i] = tok
	}

	// Warm every edge once per dataset. The first whole-object pass
	// materializes segments (and, on non-owner edges, adopts them over
	// the peer segment pull-through), so the sweep measures the warm
	// serve path; the scrape below excludes all warmup traffic.
	for i, base := range urls {
		for _, ds := range datasetIDs {
			if _, err := fetchHTTP(ctx, client, base, tokens[i], ds, p.bytesPer, false); err != nil {
				fatal(fmt.Errorf("warmup fetch %s from %s: %w", ds, base, err))
			}
		}
	}

	before := scrapeAll(ctx, urls)

	// The mix table is sized far past any plausible request count; the
	// counter wraps around it harmlessly if a sweep outruns it.
	mix := buildLargeMix(p.seed, 1<<16, len(datasetIDs), p.bytesPer, p.segSize)
	var (
		rr                     atomic.Uint64
		wholeN, rangedN, walkN atomic.Uint64
		segRequests            atomic.Uint64
	)
	do := func(ctx context.Context) (int64, error) {
		i := rr.Add(1)
		e := mix[i%uint64(len(mix))]
		ds := datasetIDs[e.ds]
		j := int(i % uint64(len(urls)))
		base, tok := urls[j], tokens[j]
		switch e.flavor {
		case mixWhole:
			wholeN.Add(1)
			n, err := fetchHTTP(ctx, client, base, tok, ds, p.bytesPer, p.verify)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scdn-loadgen: whole fetch %s: %v\n", ds, err)
			}
			return n, err
		case mixRanged:
			rangedN.Add(1)
			length := p.segSize
			if e.off+length > p.bytesPer {
				length = p.bytesPer - e.off
			}
			n, err := fetchRangeHTTP(ctx, client, base, tok, ds, e.off, length, p.verify)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scdn-loadgen: ranged fetch %s [%d,+%d): %v\n", ds, e.off, length, err)
			}
			return n, err
		default:
			walkN.Add(1)
			var total int64
			for seg := int64(0); seg < segsPer; seg++ {
				segRequests.Add(1)
				n, err := fetchSegmentHTTP(ctx, client, base, tok, ds, seg,
					seg*p.segSize, storage.SegmentExtent(p.bytesPer, p.segSize, seg), p.verify)
				total += n
				if err != nil {
					fmt.Fprintf(os.Stderr, "scdn-loadgen: segment %s/%d: %v\n", ds, seg, err)
					return total, err
				}
			}
			return total, nil
		}
	}

	fmt.Printf("scdn-loadgen: large-object sweep: rates %v req/s × %s each (dist %s, pool %d, seed %d)\n",
		p.rates, p.duration, p.dist, p.maxConns, p.seed)
	cfg := loadharness.SweepConfig{
		Rates: p.rates, Duration: p.duration, MaxConns: p.maxConns,
		Dist: p.dist, Seed: p.seed,
		Settle: 200 * time.Millisecond,
		Progress: func(r loadharness.RateResult) {
			fmt.Printf("  rate %6.1f: achieved %6.1f req/s %8.1f MB/s, %d issued, %d failed, p99 %.2fms\n",
				r.OfferedRPS, r.AchievedRPS, r.AchievedMBps, r.Issued, r.Failed, r.LatencyMS.P99)
		},
	}
	start := time.Now()
	results, err := loadharness.SweepBytes(ctx, cfg, do)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	after := scrapeAll(ctx, urls)
	delta := diffScrapes(before, after)

	var issued, failed, totalBytes uint64
	var agg, aggMBps loadharness.Hist
	for _, r := range results {
		issued += r.Issued
		failed += r.Failed
		totalBytes += r.Bytes
		if r.Hist != nil {
			agg.Merge(r.Hist)
		}
		if r.MBpsHist != nil {
			aggMBps.Merge(r.MBpsHist)
		}
	}
	kneeIdx := loadharness.Knee(results)
	knee := results[kneeIdx]

	fmt.Printf("\nlarge-object open loop over %d edges: %d requests (%d whole, %d ranged, %d walks) in %.2fs\n",
		len(urls), issued, wholeN.Load(), rangedN.Load(), walkN.Load(), elapsed.Seconds())
	fmt.Printf("knee: offered %.1f req/s, achieved %.1f req/s, sustained %.1f MB/s, p99 %.2fms\n",
		knee.OfferedRPS, knee.AchievedRPS, knee.AchievedMBps, knee.LatencyMS.P99)
	fmt.Printf("bytes moved: %.1f MB total (%.1f MB/s wall-clock across all rates)\n",
		float64(totalBytes)/1e6, float64(totalBytes)/1e6/elapsed.Seconds())
	fmt.Printf("failed requests: %d\n", failed)
	fmt.Printf("store delta: segmented-serves=%d segment-fetches=%d segment-pulls=%d fadvise-seq=%d fadvise-dontneed=%d materializations=%d (%.1f MB)\n",
		delta["scdn_segmented_serves_total"], delta["scdn_segment_fetch_requests_total"],
		delta["scdn_segment_pulls_total"], delta["scdn_store_fadvise_sequential_total"],
		delta["scdn_store_fadvise_dontneed_total"], delta["scdn_store_materialize_total"],
		float64(delta["scdn_store_materialize_bytes_total"])/1e6)

	// Reconciliation. Whole and ranged requests each hit /v1/fetch
	// exactly once (every edge serves locally after warmup: segments
	// re-materialize from the generator on eviction, never over a peer);
	// walks hit the segment endpoint once per segment. Any server-side
	// failure, or a peer segment hop after warmup, is an accounting bug.
	ok := true
	if failed != 0 {
		ok = false
	}
	if want := wholeN.Load() + rangedN.Load(); delta["scdn_fetch_requests_total"] != want {
		fmt.Printf("metrics mismatch: cluster saw %d fetches, mix issued %d whole+ranged\n",
			delta["scdn_fetch_requests_total"], want)
		ok = false
	}
	clientSegFetches := delta["scdn_segment_fetch_requests_total"] - delta["scdn_peer_segment_fetch_requests_total"]
	if clientSegFetches != segRequests.Load() {
		fmt.Printf("metrics mismatch: cluster saw %d client segment fetches, walks issued %d\n",
			clientSegFetches, segRequests.Load())
		ok = false
	}
	if delta["scdn_fetch_failures_total"] != 0 || delta["scdn_segment_fetch_failures_total"] != 0 {
		fmt.Printf("metrics mismatch: cluster recorded %d fetch / %d segment-fetch failures\n",
			delta["scdn_fetch_failures_total"], delta["scdn_segment_fetch_failures_total"])
		ok = false
	}
	if delta["scdn_segmented_serves_total"] == 0 {
		fmt.Printf("metrics mismatch: the segmented serve path never ran (threshold misconfigured?)\n")
		ok = false
	}

	if p.benchOut != "" {
		rec := loadharness.LargeRecord{
			SchemaVersion: loadharness.SchemaVersion,
			Host:          loadharness.CurrentHost(),
			Mode:          "open-loop",
			Seed:          p.seed,
			Edges:         len(urls), Datasets: p.datasets, BytesPerDataset: p.bytesPer,
			SegmentSize: p.segSize,
			StoreQuota:  lc.Config.StoreQuota,
			Mix: loadharness.LargeMix{
				Whole: wholeN.Load(), Ranged: rangedN.Load(), SegmentWalk: walkN.Load(),
			},
			TotalBytes:        totalBytes,
			ElapsedSeconds:    elapsed.Seconds(),
			SustainedMBps:     knee.AchievedMBps,
			LatencyMS:         agg.LatencyMS(),
			RequestMBps:       aggMBps.Digest(),
			Failed:            failed,
			SegmentedServes:   delta["scdn_segmented_serves_total"],
			SegmentFetches:    delta["scdn_segment_fetch_requests_total"],
			SegmentPulls:      delta["scdn_segment_pulls_total"],
			FadviseSequential: delta["scdn_store_fadvise_sequential_total"],
			FadviseDontNeed:   delta["scdn_store_fadvise_dontneed_total"],
			Materializations:  delta["scdn_store_materialize_total"],
			MaterializedBytes: delta["scdn_store_materialize_bytes_total"],
			Reconciled:        ok,
			OpenLoop:          loadharness.NewOpenLoop(cfg, results),
		}
		if err := loadharness.WriteRecord(p.benchOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: bench-out: %v\n", err)
			ok = false
		} else {
			fmt.Printf("benchmark record: %s\n", p.benchOut)
		}
	}
	if ok {
		fmt.Println("metrics reconciliation: OK")
	} else {
		os.Exit(1)
	}
}

// fetchRangeHTTP fetches one byte window of a dataset with a Range
// header, expecting 206 and exactly length bytes.
func fetchRangeHTTP(ctx context.Context, client *http.Client, base, tok string,
	ds storage.DatasetID, off, length int64, verify bool) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fetch/"+string(ds), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	req.Header.Set("Range", "bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+length-1, 10))
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		drain(resp.Body)
		return 0, fmt.Errorf("status %s (want 206)", resp.Status)
	}
	return readExpected(resp.Body, ds, off, length, verify)
}

// fetchSegmentHTTP fetches one segment via the segment endpoint,
// expecting 200 and the segment's exact extent.
func fetchSegmentHTTP(ctx context.Context, client *http.Client, base, tok string,
	ds storage.DatasetID, seg, off, extent int64, verify bool) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/fetch/"+string(ds)+"/segments/"+strconv.FormatInt(seg, 10), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	return readExpected(resp.Body, ds, off, extent, verify)
}

// readExpected drains exactly n payload bytes, verifying them against
// the deterministic generator when verify is set, and fails on any
// length mismatch either way.
func readExpected(r io.Reader, ds storage.DatasetID, off, n int64, verify bool) (int64, error) {
	if verify {
		return server.VerifyPayloadRange(r, ds, off, n)
	}
	got, err := io.Copy(io.Discard, r)
	if err != nil {
		return got, err
	}
	if got != n {
		return got, fmt.Errorf("body length %d, want %d", got, n)
	}
	return got, nil
}
