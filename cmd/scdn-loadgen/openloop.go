package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"scdn/internal/loadharness"
	"scdn/internal/server"
	"scdn/internal/storage"
)

// openLoopParams parameterizes an open-loop sweep (scdn-loadgen
// -openloop): requests fire on a seeded arrival schedule regardless of
// how many are still in flight, and every latency is measured from the
// request's intended start time — the coordinated-omission-safe number
// a real client population would experience.
type openLoopParams struct {
	nodes    int
	targets  string
	datasets int
	bytesPer int64
	rates    []float64
	duration time.Duration
	maxConns int
	dist     string
	seed     int64
	pull     bool
	verify   bool
	store    string
	benchOut string
}

// parseRates parses the -rates ladder ("200,400,800").
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad arrival rate %q in -rates (want positive req/s)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rates is empty")
	}
	return out, nil
}

// runOpenLoop sweeps the arrival-rate ladder against the cluster,
// locates the latency-vs-throughput knee, reconciles its own counts
// against /metrics, and writes a schema-v2 BENCH record with the full
// curve. Exits non-zero on any failed request or accounting mismatch.
func runOpenLoop(p openLoopParams) {
	var (
		urls       []string
		datasetIDs []storage.DatasetID
		userIDs    []int64
		lc         *server.LocalCluster
	)
	payloadMode := p.store
	if p.targets == "" {
		var err error
		lc, err = server.StartLocalCluster(server.ClusterConfig{
			Nodes: p.nodes, Users: 8, Datasets: p.datasets,
			DatasetBytes: p.bytesPer, Seed: p.seed, PullThrough: p.pull,
			StoreMode: p.store,
			Sweep:     server.SweeperConfig{ReplicationTarget: 2},
		})
		if err != nil {
			fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = lc.Shutdown(ctx)
		}()
		urls = lc.URLs()
		datasetIDs = lc.DatasetIDs
		for _, u := range lc.UserIDs {
			userIDs = append(userIDs, int64(u))
		}
		fmt.Printf("scdn-loadgen: started %d-node in-process cluster on loopback TCP (store: %s)\n",
			p.nodes, p.store)
	} else {
		payloadMode = "targets"
		urls = strings.Split(p.targets, ",")
		for d := 0; d < p.datasets; d++ {
			datasetIDs = append(datasetIDs, storage.DatasetID(fmt.Sprintf("ds-%03d", d+1)))
		}
		userIDs = []int64{101}
	}

	ctx := context.Background()
	client := server.NewHTTPClient(30 * time.Second)
	tokens := make([]string, len(urls))
	for i, base := range urls {
		tok, err := loginHTTP(ctx, client, base, userIDs[i%len(userIDs)])
		if err != nil {
			fatal(fmt.Errorf("login on %s: %w", base, err))
		}
		tokens[i] = tok
	}

	// Warm every edge once per dataset so the sweep measures the serving
	// hot path, not first-touch replica materialization.
	for i, base := range urls {
		for _, ds := range datasetIDs {
			if _, err := fetchHTTP(ctx, client, base, tokens[i], ds, p.bytesPer, false); err != nil {
				fatal(fmt.Errorf("warmup fetch %s from %s: %w", ds, base, err))
			}
		}
	}

	before := scrapeAll(ctx, urls)

	var (
		rr        atomic.Uint64
		bytesRead atomic.Int64
	)
	do := func(ctx context.Context) error {
		i := rr.Add(1)
		ds := datasetIDs[i%uint64(len(datasetIDs))]
		j := int(i % uint64(len(urls)))
		n, err := fetchHTTP(ctx, client, urls[j], tokens[j], ds, p.bytesPer, p.verify)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: fetch %s: %v\n", ds, err)
			return err
		}
		bytesRead.Add(n)
		return nil
	}

	fmt.Printf("scdn-loadgen: open-loop sweep: rates %v req/s × %s each (dist %s, pool %d, seed %d)\n",
		p.rates, p.duration, p.dist, p.maxConns, p.seed)
	cfg := loadharness.SweepConfig{
		Rates: p.rates, Duration: p.duration, MaxConns: p.maxConns,
		Dist: p.dist, Seed: p.seed,
		Settle: 200 * time.Millisecond,
		Progress: func(r loadharness.RateResult) {
			fmt.Printf("  rate %7.0f: achieved %7.1f req/s, %d issued, %d failed, p50 %.2fms p99 %.2fms max %.2fms\n",
				r.OfferedRPS, r.AchievedRPS, r.Issued, r.Failed,
				r.LatencyMS.P50, r.LatencyMS.P99, r.LatencyMS.Max)
		},
	}
	start := time.Now()
	results, err := loadharness.Sweep(ctx, cfg, do)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	after := scrapeAll(ctx, urls)
	delta := diffScrapes(before, after)

	var issued, failed uint64
	var agg loadharness.Hist
	for _, r := range results {
		issued += r.Issued
		failed += r.Failed
		if r.Hist != nil {
			agg.Merge(r.Hist)
		}
	}
	kneeIdx := loadharness.Knee(results)
	knee := results[kneeIdx]
	mb := float64(bytesRead.Load()) / (1 << 20)

	fmt.Printf("\nopen loop over %d edges: %d requests across %d rates in %.2fs (%.1f MB served)\n",
		len(urls), issued, len(results), elapsed.Seconds(), mb)
	fmt.Printf("knee: offered %.0f req/s, achieved %.1f req/s, p99 %.2fms\n",
		knee.OfferedRPS, knee.AchievedRPS, knee.LatencyMS.P99)
	fmt.Printf("intended-start latency ms (all rates): mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f\n",
		agg.Mean()*1000, agg.Quantile(0.50)*1000, agg.Quantile(0.95)*1000, agg.Quantile(0.99)*1000)
	fmt.Printf("failed requests: %d\n", failed)

	cacheHits := delta["scdn_payload_cache_hits_total"]
	cacheMisses := delta["scdn_payload_cache_misses_total"]
	fmt.Printf("cluster delta: fetch=%d failures=%d local=%d peer=%d origin=%d latency-samples=%d\n",
		delta["scdn_fetch_requests_total"], delta["scdn_fetch_failures_total"],
		delta["scdn_local_hits_total"], delta["scdn_peer_hits_total"],
		delta["scdn_origin_fetches_total"], delta["scdn_fetch_latency_seconds_count"])

	// Reconciliation: every request the schedule fired must appear in the
	// cluster's exposition — an open-loop run with unexplained failures or
	// missing samples is a broken measurement, not a slow one.
	ok := true
	if failed != 0 {
		ok = false
	}
	if delta["scdn_fetch_requests_total"] != issued {
		fmt.Printf("metrics mismatch: cluster saw %d fetches, schedule fired %d\n",
			delta["scdn_fetch_requests_total"], issued)
		ok = false
	}
	if delta["scdn_fetch_latency_seconds_count"] != issued {
		fmt.Printf("metrics mismatch: cluster recorded %d latency samples, want %d\n",
			delta["scdn_fetch_latency_seconds_count"], issued)
		ok = false
	}
	if delta["scdn_fetch_failures_total"] != 0 {
		fmt.Printf("metrics mismatch: cluster recorded %d fetch failures\n",
			delta["scdn_fetch_failures_total"])
		ok = false
	}

	if p.benchOut != "" {
		rec := loadharness.DeliveryRecord{
			SchemaVersion: loadharness.SchemaVersion,
			Host:          loadharness.CurrentHost(),
			Mode:          "open-loop",
			Requests:      int(issued),
			Edges:         len(urls), Datasets: p.datasets, BytesPerDataset: p.bytesPer,
			PayloadMode:    payloadMode,
			ElapsedSeconds: elapsed.Seconds(),
			ThroughputRPS:  knee.AchievedRPS,
			ThroughputMBps: mb / elapsed.Seconds(),
			LatencyMS:      agg.LatencyMS(),
			Failed:         failed,
			CacheHits:      cacheHits,
			CacheMisses:    cacheMisses,
			CacheHitRate:   loadharness.HitRate(cacheHits, cacheMisses),
			RangeRequests:  delta["scdn_range_requests_total"],
			Reconciled:     ok,
			OpenLoop:       loadharness.NewOpenLoop(cfg, results),
		}
		if err := loadharness.WriteRecord(p.benchOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "scdn-loadgen: bench-out: %v\n", err)
			ok = false
		} else {
			fmt.Printf("benchmark record: %s\n", p.benchOut)
		}
	}
	if ok {
		fmt.Println("metrics reconciliation: OK")
	} else {
		os.Exit(1)
	}
}
