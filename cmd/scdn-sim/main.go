// Command scdn-sim runs a full S-CDN simulation over a synthetic
// scientific collaboration and prints the Section V-E CDN and social
// metric report. The community comes from the calibrated coauthorship
// generator (one of the three trust subgraphs); datasets, replica
// placement, churn, transfers, and re-replication all run on the
// discrete-event engine.
//
// Usage:
//
//	scdn-sim                                  # defaults: fewauthors graph, 7 days
//	scdn-sim -graph double -days 14 -requests 5000
//	scdn-sim -placement "Node Degree" -servers 3 -no-churn
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scdn"
)

func main() {
	var (
		seed          = flag.Int64("seed", 42, "simulation seed")
		graphName     = flag.String("graph", "fewauthors", "community source: baseline|double|fewauthors")
		days          = flag.Int("days", 7, "simulated days")
		requests      = flag.Int("requests", 2000, "data-access requests to generate")
		datasets      = flag.Int("datasets", 40, "datasets published into the CDN")
		replicas      = flag.Int("replicas", 3, "initial replicas per dataset")
		placementName = flag.String("placement", "Community Node Degree", "placement algorithm")
		servers       = flag.Int("servers", 2, "allocation servers")
		noChurn       = flag.Bool("no-churn", false, "disable diurnal node churn")
		strategy      = flag.String("strategy", "social", "placement strategy: social|trust|availability")
		migrate       = flag.Float64("migrate-below", 0, "migrate replicas off hosts below this uptime (0 disables)")
		failProb      = flag.Float64("fail-prob", 0.02, "per-attempt transfer failure probability")
		updates       = flag.Int("updates", 20, "dataset updates published during the run (exercises anti-entropy)")
		workloadKind  = flag.String("workload", "social", "workload: social (Zipf + collaborator locality) | medical (Section IV MRI trial)")
		subjects      = flag.Int("subjects", 12, "trial subjects (with -workload medical)")
		instFrac      = flag.Float64("institutional", 0.1, "fraction of top-degree nodes with always-on servers")
		social        = flag.Float64("social-locality", 0.7, "probability a request targets a collaborator's data")
	)
	flag.Parse()

	study, err := scdn.NewStudy(scdn.StudyConfig{Seed: *seed, Runs: 1})
	if err != nil {
		fatal(err)
	}
	community, err := study.Community(*graphName, *instFrac)
	if err != nil {
		fatal(err)
	}
	opts := scdn.DefaultOptions(*seed)
	opts.Placement = *placementName
	opts.AllocationServers = *servers
	opts.Churn = !*noChurn
	opts.Strategy = *strategy
	opts.MigrationUptimeFloor = *migrate
	opts.TransferFailureProb = *failProb
	net, err := community.Build(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("S-CDN simulation: %d researchers (%s graph), %d datasets × %d replicas, %d requests, %d days\n",
		community.Size(), *graphName, *datasets, *replicas, *requests, *days)
	fmt.Printf("placement=%s servers=%d churn=%v fail-prob=%.3f\n\n",
		*placementName, *servers, !*noChurn, *failProb)

	var reqs *scdn.Workload
	switch *workloadKind {
	case "social":
		reqs, err = scdn.GenerateSocialWorkload(net, scdn.WorkloadConfig{
			Seed:           *seed + 1,
			Datasets:       *datasets,
			Requests:       *requests,
			Duration:       time.Duration(*days) * 24 * time.Hour,
			SocialLocality: *social,
		})
	case "medical":
		reqs, err = scdn.GenerateMedicalTrial(net, *subjects, *seed+1)
	default:
		fatal(fmt.Errorf("unknown workload %q (want social|medical)", *workloadKind))
	}
	if err != nil {
		fatal(err)
	}
	// Publish + replicate happen at t=0; requests flow afterwards.
	// Derived datasets (medical workloads) carry their lineage into the
	// provenance log.
	for _, d := range reqs.Datasets {
		if der, ok := reqs.Derivations[d.ID]; ok {
			err = net.PublishDerived(d.Owner, d.ID, d.Bytes, der.Parent, der.Stage)
		} else {
			err = net.Publish(d.Owner, d.ID, d.Bytes)
		}
		if err != nil {
			fatal(err)
		}
		if _, err := net.Replicate(d.ID, *replicas); err != nil {
			fatal(err)
		}
	}
	net.Schedule(reqs.Requests)

	// Owners keep editing their data: updates spread across the run, each
	// picking the next dataset round-robin.
	window := time.Duration(*days) * 24 * time.Hour
	if *updates > 0 {
		step := window / time.Duration(*updates+1)
		for i := 0; i < *updates; i++ {
			target := reqs.Datasets[i%len(reqs.Datasets)].ID
			at := step * time.Duration(i+1)
			net.Run(at) // advance to the update instant, then publish
			if err := net.Update(target); err != nil {
				fatal(err)
			}
		}
	}
	net.Run(window)

	if err := net.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
	st := net.Staleness()
	fmt.Printf("replication: staleness %.3f, %d update deliveries, mean convergence %.0fs, %d datasets still stale\n",
		st.Ratio, st.Propagations, st.MeanConvergenceSeconds, len(st.StaleDatasets))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdn-sim:", err)
	os.Exit(1)
}
