package scdn

import (
	"fmt"
	"math/rand"

	"scdn/internal/partition"
)

// SegmentUsage records per-researcher access counts per dataset segment,
// the input to data partitioning (Section V-D stage two).
type SegmentUsage map[ResearcherID]map[DatasetID]uint64

// PartitionMethod names a segment→replica assignment strategy.
type PartitionMethod string

// Partitioning methods.
const (
	// PartitionRoundRobin distributes segments cyclically (socially blind
	// baseline).
	PartitionRoundRobin PartitionMethod = "round-robin"
	// PartitionUsage assigns segments near their heaviest users
	// (the paper's "traditional" model).
	PartitionUsage PartitionMethod = "usage"
	// PartitionSocial groups users into communities and assigns segments
	// to replicas inside the highest-demand communities (the paper's
	// socially informed model).
	PartitionSocial PartitionMethod = "social"
)

// PartitionPlan is the computed segment→replica-host assignment together
// with its locality score (mean access proximity in [0,1]; 1 means every
// access is served at the accessing node).
type PartitionPlan struct {
	Assignment map[DatasetID][]ResearcherID
	Locality   float64
}

// PartitionSegment describes one placeable data segment.
type PartitionSegment struct {
	ID    DatasetID
	Bytes int64
}

// PlanPartition computes a segment→replica assignment over the network's
// social graph with the given method. replicaHosts are the candidate
// holders (e.g. from Replicate or a placement run); copies is how many
// hosts each segment gets (min 1).
func (n *Network) PlanPartition(method PartitionMethod, segments []PartitionSegment,
	usage SegmentUsage, replicaHosts []ResearcherID, copies int) (*PartitionPlan, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("scdn: no segments")
	}
	g := n.sys.Platform.SocialGraph()
	segs := make([]partition.Segment, 0, len(segments))
	for _, s := range segments {
		segs = append(segs, partition.Segment{ID: s.ID, Bytes: s.Bytes})
	}
	use := make(partition.Usage, len(usage))
	for u, m := range usage {
		use[u] = make(map[DatasetID]uint64, len(m))
		for id, c := range m {
			use[u][id] = c
		}
	}
	params := partition.Params{
		Graph:            g,
		Replicas:         replicaHosts,
		CopiesPerSegment: copies,
	}
	var (
		assignment partition.Assignment
		err        error
	)
	switch method {
	case PartitionRoundRobin:
		assignment, err = partition.RoundRobin(segs, params)
	case PartitionUsage:
		assignment, err = partition.UsageBased(segs, use, params)
	case PartitionSocial:
		assignment, err = partition.SocialGroupBased(segs, use, params,
			rand.New(rand.NewSource(n.sys.Config.Seed+99)))
	default:
		return nil, fmt.Errorf("scdn: unknown partition method %q", method)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[DatasetID][]ResearcherID, len(assignment))
	for id, hosts := range assignment {
		out[id] = append([]ResearcherID(nil), hosts...)
	}
	return &PartitionPlan{
		Assignment: out,
		Locality:   partition.LocalityScore(assignment, use, g),
	}, nil
}

// ScorePartition evaluates an assignment against a (possibly different)
// usage profile — e.g. a plan built from sparse observations scored
// against the full future workload.
func (n *Network) ScorePartition(assignment map[DatasetID][]ResearcherID, usage SegmentUsage) (float64, error) {
	if assignment == nil {
		return 0, fmt.Errorf("scdn: nil assignment")
	}
	g := n.sys.Platform.SocialGraph()
	a := make(partition.Assignment, len(assignment))
	for id, hosts := range assignment {
		a[id] = append([]ResearcherID(nil), hosts...)
	}
	use := make(partition.Usage, len(usage))
	for u, m := range usage {
		use[u] = make(map[DatasetID]uint64, len(m))
		for id, c := range m {
			use[u][id] = c
		}
	}
	return partition.LocalityScore(a, use, g), nil
}
