# Verify targets for the scdn repository.
#
#   make check   — the full gate: build, vet, unit tests, the -race
#                  pass over the concurrent packages (metrics + the live
#                  serving plane + striped fetch), and a 1-iteration
#                  benchmark smoke so the bench harness cannot rot.
#   make test    — tier-1 only (what CI has always run).
#   make race    — just the -race pass.
#   make bench   — the benchmark harness: delivery-plane micro-benchmarks
#                  (catalog resolve, payload block cache, range writes) at
#                  GOMAXPROCS=4, the reproduction benchmarks, and a short
#                  striped loadgen pass writing BENCH_delivery.json.
#   make loadgen — end-to-end networked benchmark: closed-loop load
#                  against a 3-node in-process edge cluster over TCP.

GO ?= go

.PHONY: check test race vet bench benchsmoke loadgen

check: vet test race benchsmoke

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/metrics ./internal/server ./internal/stripe

bench:
	$(GO) test -run '^$$' -bench . -benchmem -cpu 4 ./...
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 400 -stripes 4 -bench-out BENCH_delivery.json

benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/server

loadgen:
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 600
