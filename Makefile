# Verify targets for the scdn repository.
#
#   make check   — the full gate: build, vet, unit tests, and the -race
#                  pass over the concurrent packages (metrics + the live
#                  serving plane), so concurrency regressions fail fast.
#   make test    — tier-1 only (what CI has always run).
#   make race    — just the -race pass.
#   make bench   — the reproduction benchmark harness.
#   make loadgen — end-to-end networked benchmark: closed-loop load
#                  against a 3-node in-process edge cluster over TCP.

GO ?= go

.PHONY: check test race vet bench loadgen

check: vet test race

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/metrics ./internal/server

bench:
	$(GO) test -bench . -benchmem ./...

loadgen:
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 600
