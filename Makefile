# Verify targets for the scdn repository.
#
#   make check   — the full gate: build, vet, unit tests, the -race
#                  pass over the concurrent packages (metrics + the live
#                  serving plane + striped fetch), and a 1-iteration
#                  benchmark smoke so the bench harness cannot rot.
#   make test    — tier-1 only (what CI has always run).
#   make race    — just the -race pass.
#   make bench   — the benchmark harness: delivery-plane micro-benchmarks
#                  (catalog resolve, payload block cache, range writes,
#                  disk vs generated serving) at GOMAXPROCS=4, the
#                  reproduction benchmarks, and short striped loadgen
#                  passes in both payload store modes — the dir-mode run
#                  writes BENCH_delivery.json, the generated-mode run
#                  BENCH_delivery_generated.json.
#   make loadgen — end-to-end networked benchmark: closed-loop load
#                  against a 3-node in-process edge cluster over TCP.

GO ?= go

.PHONY: check test race vet bench benchsmoke loadgen

check: vet test race benchsmoke

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/metrics ./internal/server ./internal/storage ./internal/stripe

bench:
	$(GO) test -run '^$$' -bench . -benchmem -cpu 4 ./...
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 400 -stripes 4 -store generated -bench-out BENCH_delivery_generated.json
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 400 -stripes 4 -store dir -bench-out BENCH_delivery.json

benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/server
	$(GO) run ./cmd/scdn-loadgen -nodes 2 -workers 4 -requests 80 -store dir -bench-out BENCH_delivery.json
	grep -q '"payload_mode": "dir"' BENCH_delivery.json
	grep -q '"failed": 0' BENCH_delivery.json

loadgen:
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 600
