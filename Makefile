# Verify targets for the scdn repository.
#
#   make check   — the full gate: build, vet, the project lint suite,
#                  unit tests, the -race pass over the concurrent
#                  packages, a short native-fuzz smoke, and a
#                  1-iteration benchmark smoke so the bench harness
#                  cannot rot.
#   make test    — tier-1 only (what CI has always run).
#   make lint    — scdn-lint, the project-specific static-analysis
#                  suite (bodydrain, lockio, metricname, atomiccopy,
#                  ctxhttp); non-zero exit on any finding.
#   make race    — just the -race pass.
#   make fuzzsmoke — run each native fuzz target briefly against its
#                  checked-in seed corpus.
#   make bench   — the benchmark harness: delivery-plane micro-benchmarks
#                  (catalog resolve, payload block cache, range writes,
#                  disk vs generated serving) at GOMAXPROCS=4, the
#                  reproduction benchmarks, and short striped loadgen
#                  passes in both payload store modes — the dir-mode run
#                  writes BENCH_delivery.json, the generated-mode run
#                  BENCH_delivery_generated.json.
#   make loadgen — end-to-end networked benchmark: closed-loop load
#                  against a 3-node in-process edge cluster over TCP.
#   make ci      — what .github/workflows/check.yml runs: gofmt
#                  cleanliness, module verification, then the full
#                  check gate.
#   make churnsmoke — fixed-seed churn acceptance: a dir-mode loadgen
#                  run that kills and restarts two edges mid-stream and
#                  must finish with zero failed requests and every
#                  dataset repaired back to the replication floor
#                  (writes BENCH_churn.json).
#   make ingestsmoke — fixed-seed live-ingest acceptance: opaque
#                  datasets are uploaded through PUT /v1/datasets,
#                  fetched under churn, and every re-replication must be
#                  satisfied by verified peer byte copy — zero digest
#                  mismatches, zero generator fallbacks (writes
#                  BENCH_ingest.json).
#   make perfgate — the performance ratchet: a fixed-seed open-loop
#                  sweep (arrivals fired on schedule, latency from
#                  intended start times) writes a candidate record,
#                  which scdn-perfgate compares against the checked-in
#                  BENCH_delivery.json — knee throughput and knee p99
#                  must stay inside the tolerance band — and a fixed-seed
#                  -large sweep is gated the same way against
#                  BENCH_large.json's sustained MB/s (the byte axis).
#   make largesmoke — fixed-seed large-object acceptance: a CI-sized
#                  -large run (segmented datasets, whole/ranged/
#                  segment-walk mix, every byte verified) that must
#                  reconcile with zero failures and exercise the
#                  segmented serve path (writes BENCH_large_smoke.json).
#   make largebench — the byte-throughput measurement run whose record
#                  is checked in as BENCH_large.json.

GO ?= go

.PHONY: check test lint race vet bench benchsmoke fuzzsmoke loadgen \
	ci fmtcheck modverify churnsmoke ingestsmoke perfgate largesmoke largebench

check: vet lint test race fuzzsmoke benchsmoke largesmoke

ci: fmtcheck modverify check

# gofmt -l prints nothing when the tree is clean; any output fails the
# gate.
fmtcheck:
	@out=$$(gofmt -l cmd internal); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

modverify:
	$(GO) mod verify

test:
	$(GO) build ./...
	$(GO) test ./...

lint:
	$(GO) run ./cmd/scdn-lint ./...

vet:
	$(GO) vet ./...

# Every package that spawns goroutines or holds sync/atomic state runs
# under the race detector: cdnclient fans upload/download stripes out
# across goroutines and ingest's manifest store is shared by every
# node. Audited exclusions (no goroutines, no sync, no atomics as of
# this writing): internal/replication, internal/sim, internal/transfer
# (single-threaded simulation code), internal/lint (sequential analyzer
# driver), and the remaining pure graph/model packages; cmd/ has no
# tests.
race:
	$(GO) test -race ./internal/allocation ./internal/cdnclient ./internal/ingest \
		./internal/loadharness ./internal/metrics ./internal/middleware \
		./internal/placement ./internal/server ./internal/socialnet \
		./internal/storage ./internal/stripe

fuzzsmoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRange$$' -fuzztime 5s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzPlanStripes$$' -fuzztime 5s ./internal/stripe
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime 5s ./internal/ingest

bench:
	$(GO) test -run '^$$' -bench . -benchmem -cpu 4 ./...
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 400 -stripes 4 -store generated -bench-out BENCH_delivery_generated.json
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 400 -stripes 4 -store dir -bench-out BENCH_delivery_closed.json
	$(GO) run ./cmd/scdn-loadgen -openloop -nodes 3 -datasets 8 -store dir \
		-rates 200,400,800,1600 -openloop-duration 2s -seed 42 -bench-out BENCH_delivery.json

benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/server
	$(GO) run ./cmd/scdn-loadgen -nodes 2 -workers 4 -requests 80 -store dir -bench-out BENCH_delivery_smoke.json
	grep -q '"payload_mode": "dir"' BENCH_delivery_smoke.json
	grep -q '"failed": 0' BENCH_delivery_smoke.json
	grep -q '"schema_version": 2' BENCH_delivery_smoke.json

loadgen:
	$(GO) run ./cmd/scdn-loadgen -nodes 3 -workers 8 -requests 600

# Fixed seed: the same two victims die on the same schedule every run,
# so a repair regression reproduces instead of flaking. The run itself
# exits non-zero on any unexplained failure or unrepaired dataset; the
# greps pin the recorded outcome.
churnsmoke:
	$(GO) run ./cmd/scdn-loadgen -nodes 4 -workers 6 -requests 300 -store dir \
		-churn 'kill=2,restart=2s,spacing=2s' -seed 7 -bench-out BENCH_churn.json
	grep -q '"failed": 0' BENCH_churn.json
	grep -q '"all_restarted": true' BENCH_churn.json
	grep -q '"reconciled": true' BENCH_churn.json

# Fixed seed, same reasoning as churnsmoke. Opaque datasets cannot be
# regenerated, so the run proves repair moved verified bytes between
# peers: the regenerated counter must stay zero and every dataset must
# reconcile byte-for-byte after the churn.
ingestsmoke:
	$(GO) run ./cmd/scdn-loadgen -ingest -nodes 3 -workers 4 -datasets 8 \
		-bytes 262144 -requests 120 -stripes 3 -seed 42 \
		-churn 'kill=1,restart=3s' -bench-out BENCH_ingest.json
	grep -q '"failed": 0' BENCH_ingest.json
	grep -q '"digest_mismatches": 0' BENCH_ingest.json
	grep -q '"repair_regenerated": 0' BENCH_ingest.json
	grep -q '"reconciled": true' BENCH_ingest.json

# Fixed seed so the sweep's arrival schedule is identical across runs.
# The open-loop run itself fails on any unexcused request failure or
# /metrics mismatch; scdn-perfgate then ratchets the candidate's knee
# against the checked-in history. The tolerance band is loose on purpose
# (shared runners, loopback jitter) but a real regression — knee
# throughput halved, knee p99 blown past the floor — fails the gate.
# To advance the baseline after an intentional change, copy the
# candidate over BENCH_delivery.json and check it in.
perfgate:
	$(GO) run ./cmd/scdn-loadgen -openloop -nodes 3 -datasets 8 -store dir \
		-rates 200,400,800,1600 -openloop-duration 2s -seed 42 \
		-bench-out BENCH_openloop_candidate.json
	$(GO) run ./cmd/scdn-loadgen -large -nodes 2 -datasets 2 -bytes 33554432 \
		-segment-size 4194304 -rates 4,8,16 -openloop-duration 2s -seed 42 \
		-bench-out BENCH_large_candidate.json
	$(GO) run ./cmd/scdn-perfgate -baseline BENCH_delivery.json \
		-candidate BENCH_openloop_candidate.json \
		-large-baseline BENCH_large.json \
		-large-candidate BENCH_large_candidate.json

# Fixed seed, CI-sized segments (1 MiB over 8 MiB datasets) so the run
# finishes in seconds while still forcing the segmented layout, partial
# residency, and the segment endpoint. -verify hashes every payload
# byte in-stream: the smoke is a correctness gate, not a measurement —
# largebench (no -verify) is the number that gets checked in.
largesmoke:
	$(GO) run ./cmd/scdn-loadgen -large -nodes 2 -datasets 2 -bytes 8388608 \
		-segment-size 1048576 -rates 10,20 -openloop-duration 1s -seed 42 \
		-verify -bench-out BENCH_large_smoke.json
	grep -q '"failed": 0' BENCH_large_smoke.json
	grep -q '"reconciled": true' BENCH_large_smoke.json
	grep -q '"schema_version": 2' BENCH_large_smoke.json

# The measurement run whose record is checked in as BENCH_large.json
# (same shape the perfgate candidate uses, so the ratchet compares like
# with like). To advance the baseline after an intentional change, re-run
# and check in the new record.
largebench:
	$(GO) run ./cmd/scdn-loadgen -large -nodes 2 -datasets 2 -bytes 33554432 \
		-segment-size 4194304 -rates 4,8,16 -openloop-duration 2s -seed 42 \
		-bench-out BENCH_large.json
