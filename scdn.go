package scdn

import (
	"fmt"
	"io"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/core"
	"scdn/internal/graph"
	"scdn/internal/metrics"
	"scdn/internal/placement"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
	"scdn/internal/workload"
)

// ResearcherID identifies a participant in the collaboration.
type ResearcherID = graph.NodeID

// DatasetID identifies a shared dataset.
type DatasetID = storage.DatasetID

// TieType classifies a social relationship.
type TieType = socialnet.RelationshipType

// Relationship types re-exported for community construction.
const (
	Acquaintance   = socialnet.Acquaintance
	Colleague      = socialnet.Colleague
	Coauthor       = socialnet.Coauthor
	ProjectPartner = socialnet.ProjectPartner
)

// Community is a collaboration under construction: researchers, their
// social ties, and the storage they contribute.
type Community struct {
	users  []core.User
	edges  []core.Edge
	seen   map[ResearcherID]bool
	errors []error
}

// NewCommunity starts an empty collaboration.
func NewCommunity() *Community {
	return &Community{seen: make(map[ResearcherID]bool)}
}

// Researcher describes a participant to add.
type Researcher struct {
	ID   ResearcherID
	Name string
	// Site is the network-model site hosting the researcher's storage;
	// -1 auto-assigns across the built-in world-site catalog.
	Site int
	// StorageBytes is the contributed folder size; ReplicaReserveBytes is
	// the portion the CDN may manage. Zero values take system defaults.
	StorageBytes        int64
	ReplicaReserveBytes int64
	// Institutional nodes (lab servers) are always on; personal machines
	// follow a diurnal availability pattern when churn is enabled.
	Institutional bool
}

// Add registers a researcher. Errors (duplicate IDs) are deferred to
// Build so construction can be fluently chained.
func (c *Community) Add(r Researcher) *Community {
	if c.seen[r.ID] {
		c.errors = append(c.errors, fmt.Errorf("scdn: duplicate researcher %d", r.ID))
		return c
	}
	c.seen[r.ID] = true
	c.users = append(c.users, core.User{
		ID: r.ID, Name: r.Name, SiteID: r.Site,
		CapacityBytes: r.StorageBytes, ReplicaReserveBytes: r.ReplicaReserveBytes,
		Institutional: r.Institutional,
	})
	return c
}

// Connect records a social tie between two researchers; strength is
// application-defined (e.g., number of joint publications).
func (c *Community) Connect(a, b ResearcherID, tie TieType, strength float64) *Community {
	if !c.seen[a] || !c.seen[b] {
		c.errors = append(c.errors, fmt.Errorf("scdn: tie %d-%d references unknown researcher", a, b))
		return c
	}
	c.edges = append(c.edges, core.Edge{A: a, B: b, Type: tie, Strength: strength})
	return c
}

// Size returns the number of researchers added so far.
func (c *Community) Size() int { return len(c.users) }

// Options tunes the assembled S-CDN. The zero value is usable; see
// DefaultOptions for the concrete defaults.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// AllocationServers sets the catalog cluster size (default 2).
	AllocationServers int
	// Placement chooses the replica-placement algorithm by name (see
	// Algorithms); default "Community Node Degree".
	Placement string
	// MaxReplicas bounds per-dataset replication (default 5).
	MaxReplicas int
	// DemandThreshold is the per-sweep access count that triggers
	// re-replication (default 8).
	DemandThreshold uint64
	// Strategy optionally overrides Placement with a live-data algorithm:
	// "trust" ranks hosts by accumulated proven trust, "availability" by
	// uptime-weighted degree. Empty or "social" uses Placement.
	Strategy string
	// MigrationUptimeFloor enables replica migration: maintenance sweeps
	// move replicas off hosts whose availability trace is below this
	// uptime (0 disables).
	MigrationUptimeFloor float64
	// Churn enables diurnal node availability (default true in
	// DefaultOptions; the zero value disables it).
	Churn bool
	// TransferFailureProb is the per-attempt transient transfer failure
	// probability (default 0.02).
	TransferFailureProb float64
	// DisableP2PFallback turns off social-neighbourhood replica discovery
	// during total allocation-server outages (on by default).
	DisableP2PFallback bool
	// TransferStreams sets GridFTP-style parallel streams per transfer
	// (default 1; GlobusTransfer deployments typically use 4).
	TransferStreams int
	// GroupName scopes all datasets (default "collaboration").
	GroupName string
}

// DefaultOptions returns the standard configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                seed,
		AllocationServers:   2,
		Placement:           "Community Node Degree",
		MaxReplicas:         5,
		DemandThreshold:     8,
		Churn:               true,
		TransferFailureProb: 0.02,
		GroupName:           "collaboration",
	}
}

// Network is a running S-CDN over a community.
type Network struct {
	sys *core.SCDN
}

// Build assembles the S-CDN: social platform, middleware, allocation
// cluster, repositories, clients, transfer engine, and churn model.
func (c *Community) Build(opts Options) (*Network, error) {
	if len(c.errors) > 0 {
		return nil, c.errors[0]
	}
	cfg := core.DefaultConfig(opts.Seed)
	if opts.AllocationServers > 0 {
		cfg.AllocationServers = opts.AllocationServers
	}
	if opts.Placement != "" {
		alg, err := placement.ByName(opts.Placement)
		if err != nil {
			return nil, err
		}
		cfg.Placement = alg
	}
	if opts.MaxReplicas > 0 {
		cfg.MaxReplicas = opts.MaxReplicas
	}
	if opts.DemandThreshold > 0 {
		cfg.DemandThreshold = opts.DemandThreshold
	}
	switch opts.Strategy {
	case "", "social":
		cfg.Strategy = core.StrategySocial
	case "trust":
		cfg.Strategy = core.StrategyTrust
	case "availability":
		cfg.Strategy = core.StrategyAvailability
	default:
		return nil, fmt.Errorf("scdn: unknown strategy %q (want social|trust|availability)", opts.Strategy)
	}
	cfg.MigrationUptimeFloor = opts.MigrationUptimeFloor
	cfg.P2PFallback = !opts.DisableP2PFallback
	cfg.TransferStreams = opts.TransferStreams
	cfg.Churn = opts.Churn
	if opts.TransferFailureProb > 0 {
		cfg.TransferFailureProb = opts.TransferFailureProb
	}
	if opts.GroupName != "" {
		cfg.GroupName = opts.GroupName
	}
	sys, err := core.New(cfg, c.users, c.edges)
	if err != nil {
		return nil, err
	}
	return &Network{sys: sys}, nil
}

// Publish introduces a dataset owned by a researcher; the origin copy
// stays in the owner's repository and the dataset is scoped to the
// collaboration group.
func (n *Network) Publish(owner ResearcherID, id DatasetID, bytes int64) error {
	return n.sys.PublishDataset(owner, id, bytes)
}

// Replicate asks the CDN to place k replicas of a dataset using the
// configured social placement algorithm; transfers complete as the
// simulation runs. It returns the selected hosts.
func (n *Network) Replicate(id DatasetID, k int) ([]ResearcherID, error) {
	return n.sys.PlaceReplicas(id, k)
}

// AccessResult re-exports the client access outcome.
type AccessResult = cdnclient.AccessResult

// Access outcomes re-exported for result inspection.
const (
	LocalHit       = cdnclient.LocalHit
	ReplicaFetch   = cdnclient.ReplicaFetch
	OriginFetch    = cdnclient.OriginFetch
	Denied         = cdnclient.Denied
	Unavailable    = cdnclient.Unavailable
	TransferFailed = cdnclient.TransferFailed
)

// Request performs one data access for a researcher; done (optional)
// fires in virtual time when the access completes.
func (n *Network) Request(user ResearcherID, id DatasetID, done func(AccessResult)) error {
	return n.sys.RequestAccess(user, id, done)
}

// WorkloadRequest schedules one access at a virtual-time offset.
type WorkloadRequest = workload.Request

// Schedule queues workload requests on the simulation clock.
func (n *Network) Schedule(reqs []WorkloadRequest) { n.sys.LoadRequests(reqs) }

// Run advances the simulation to the given virtual time.
func (n *Network) Run(until time.Duration) { n.sys.Run(until) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sys.Engine.Now().Duration() }

// Replicas returns the nodes currently holding a dataset (origin
// included).
func (n *Network) Replicas(id DatasetID) ([]ResearcherID, error) {
	reps, err := n.sys.Cluster.Replicas(id)
	if err != nil {
		return nil, err
	}
	out := make([]ResearcherID, 0, len(reps))
	for _, r := range reps {
		out = append(out, ResearcherID(r.Node))
	}
	return out, nil
}

// HasLocal reports whether a researcher's repository holds a dataset.
func (n *Network) HasLocal(user ResearcherID, id DatasetID) (bool, error) {
	repo, err := n.sys.Repository(user)
	if err != nil {
		return false, err
	}
	return repo.HasLocal(id), nil
}

// TrustScore returns the accumulated proven-trust score between two
// researchers at the current virtual time.
func (n *Network) TrustScore(a, b ResearcherID) float64 {
	return n.sys.Trust.Score(a, b, n.Now())
}

// Update publishes a new version of a dataset from its owner; replicas
// become stale until the anti-entropy protocol propagates the update.
func (n *Network) Update(id DatasetID) error { return n.sys.UpdateDataset(id) }

// Stale reports whether any replica of the dataset is behind its latest
// published version.
func (n *Network) Stale(id DatasetID) bool { return n.sys.Stale(id) }

// StalenessReport summarizes replica freshness across the CDN.
type StalenessReport = core.StalenessReport

// Staleness returns the current replication freshness summary.
func (n *Network) Staleness() StalenessReport { return n.sys.Staleness() }

// Metrics exposes the Section V-E metric sets.
func (n *Network) Metrics() (*metrics.CDNMetrics, *metrics.SocialMetrics) {
	return n.sys.CDN, n.sys.Social
}

// WriteReport prints the Section V-E CDN and social metrics report.
func (n *Network) WriteReport(w io.Writer) error {
	return metrics.Report(w, n.sys.CDN, n.sys.Social, n.Now())
}

// Algorithms lists the available placement algorithm names: the paper's
// four first, then the extensions.
func Algorithms() []string {
	var out []string
	for _, a := range placement.PaperAlgorithms() {
		out = append(out, a.Name())
	}
	for _, a := range placement.ExtendedAlgorithms() {
		out = append(out, a.Name())
	}
	return out
}
