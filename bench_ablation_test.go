package scdn

import (
	"math/rand"
	"testing"
	"time"

	"scdn/internal/casestudy"
	"scdn/internal/partition"
	"scdn/internal/placement"
)

// BenchmarkHitRadiusAblation measures the DESIGN.md hop-sensitivity
// ablation: the paper's hit definition (1 hop) vs. a 2-hop radius, for
// Community Node Degree at k=10 on the baseline graph.
func BenchmarkHitRadiusAblation(b *testing.B) {
	cfg := casestudy.DefaultConfig()
	cfg.Runs = 30
	s, err := casestudy.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var hop1, hop2 float64
	for i := 0; i < b.N; i++ {
		r1 := placement.Evaluate(s.Baseline.Graph, s.TestEvents, placement.CommunityNodeDegree{},
			placement.EvalConfig{Replicas: 10, Runs: 30, HitRadius: 1, Seed: 42})
		r2 := placement.Evaluate(s.Baseline.Graph, s.TestEvents, placement.CommunityNodeDegree{},
			placement.EvalConfig{Replicas: 10, Runs: 30, HitRadius: 2, Seed: 42})
		hop1, hop2 = r1.HitRate, r2.HitRate
	}
	b.ReportMetric(hop1, "hop1")
	b.ReportMetric(hop2, "hop2")
}

// BenchmarkPartitioningLocality compares the Section V-D stage-two
// partitioners (round-robin, usage-based, social-group) by locality score
// on the trusted subgraph with a socially local usage profile.
func BenchmarkPartitioningLocality(b *testing.B) {
	cfg := casestudy.DefaultConfig()
	cfg.Runs = 1
	s, err := casestudy.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g := s.Few.Graph
	nodes := g.Nodes()
	rng := rand.New(rand.NewSource(13))

	// 24 segments; usage concentrated around each segment's "home" node's
	// neighbourhood (socially local access).
	var segments []partition.Segment
	usage := make(partition.Usage)
	for i := 0; i < 24; i++ {
		id := partition.Segment{ID: storageID(i), Bytes: 1e9}
		segments = append(segments, id)
		home := nodes[rng.Intn(len(nodes))]
		for _, reader := range append(g.Neighbors(home), home) {
			if usage[reader] == nil {
				usage[reader] = map[storageDatasetID]uint64{}
			}
			usage[reader][storageID(i)] += uint64(1 + rng.Intn(20))
		}
	}
	replicas := placement.CommunityNodeDegree{}.Place(g, 10, rng)
	params := partition.Params{Graph: g, Replicas: replicas, CopiesPerSegment: 2}

	b.ResetTimer()
	var rrScore, usageScore, socialScore float64
	for i := 0; i < b.N; i++ {
		if a, err := partition.RoundRobin(segments, params); err == nil {
			rrScore = partition.LocalityScore(a, usage, g)
		}
		if a, err := partition.UsageBased(segments, usage, params); err == nil {
			usageScore = partition.LocalityScore(a, usage, g)
		}
		if a, err := partition.SocialGroupBased(segments, usage, params,
			rand.New(rand.NewSource(int64(i)))); err == nil {
			socialScore = partition.LocalityScore(a, usage, g)
		}
	}
	b.ReportMetric(rrScore, "roundrobin")
	b.ReportMetric(usageScore, "usage")
	b.ReportMetric(socialScore, "social")
}

// BenchmarkStrategyAblation runs the full simulation under churn with
// each placement strategy and reports the resulting hit ratios — the
// DESIGN.md "social vs. traditional placement" ablation at system level.
func BenchmarkStrategyAblation(b *testing.B) {
	runOne := func(strategy string) float64 {
		study, err := NewStudy(StudyConfig{Seed: 42, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		community, err := study.Community("fewauthors", 0.1)
		if err != nil {
			b.Fatal(err)
		}
		opts := DefaultOptions(42)
		opts.Strategy = strategy
		opts.Churn = true
		opts.MigrationUptimeFloor = 0.4
		net, err := community.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		wl, err := GenerateSocialWorkload(net, WorkloadConfig{
			Seed: 7, Datasets: 20, Requests: 800,
			Duration: 3 * 24 * time.Hour, SocialLocality: 0.7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range wl.Datasets {
			if err := net.Publish(d.Owner, d.ID, d.Bytes); err != nil {
				b.Fatal(err)
			}
			if _, err := net.Replicate(d.ID, 3); err != nil {
				b.Fatal(err)
			}
		}
		net.Schedule(wl.Requests)
		net.Run(3 * 24 * time.Hour)
		cdn, _ := net.Metrics()
		return cdn.HitRatio()
	}
	b.ResetTimer()
	var social, trust, avail float64
	for i := 0; i < b.N; i++ {
		social = runOne("social")
		trust = runOne("trust")
		avail = runOne("availability")
	}
	b.ReportMetric(social, "social-hit")
	b.ReportMetric(trust, "trust-hit")
	b.ReportMetric(avail, "availability-hit")
}

// storageDatasetID mirrors the internal dataset ID type for bench inputs.
type storageDatasetID = DatasetID

func storageID(i int) DatasetID {
	return DatasetID(rune('a'+i%26)) + DatasetID(rune('0'+i/26))
}
