module scdn

go 1.22
